"""Model-based (stateful) property tests for the storage substrate.

A hypothesis state machine drives the heap file / buffer pool through
random operation sequences and checks them against a trivial in-memory
model after every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.storage import BufferPool, HeapFile, SimulatedDisk


class HeapFileMachine(RuleBasedStateMachine):
    """Heap file vs a dict of rid -> payload."""

    def __init__(self):
        super().__init__()
        disk = SimulatedDisk()
        # A deliberately tiny pool so evictions interleave with operations.
        self.pool = BufferPool(disk, 3)
        self.heap = HeapFile(self.pool)
        self.model = {}

    rids = Bundle("rids")

    @rule(target=rids, payload=st.binary(min_size=0, max_size=600))
    def append(self, payload):
        rid = self.heap.append(payload)
        assert rid not in self.model
        self.model[rid] = payload
        return rid

    @rule(rid=rids)
    def read(self, rid):
        if self.model.get(rid) is None:
            return  # deleted earlier; covered by delete rule
        assert self.heap.get(rid) == self.model[rid]

    @rule(rid=rids)
    def delete(self, rid):
        from repro.storage import HeapFileError

        if self.model.get(rid) is None:
            return
        self.heap.delete(rid)
        self.model[rid] = None
        try:
            self.heap.get(rid)
            raise AssertionError("deleted record still readable")
        except HeapFileError:
            pass

    @invariant()
    def scan_matches_model(self):
        live = {rid: data for rid, data in self.model.items() if data is not None}
        scanned = dict(self.heap.scan())
        assert scanned == live

    @invariant()
    def pool_within_capacity(self):
        assert self.pool.resident_pages <= self.pool.capacity


class BufferPoolMachine(RuleBasedStateMachine):
    """Buffer pool contents vs the authoritative page images."""

    def __init__(self):
        super().__init__()
        self.disk = SimulatedDisk()
        self.pool = BufferPool(self.disk, 4)
        self.fid = self.disk.create_file()
        self.model = {}  # page_no -> latest bytes

    pages = Bundle("pages")

    @rule(target=pages)
    def new_page(self):
        page_no = self.pool.new_page(self.fid)
        self.model[page_no] = bytes(8192)
        return page_no

    @rule(page_no=pages, stamp=st.integers(min_value=0, max_value=255))
    def write(self, page_no, stamp):
        frame = self.pool.get_page(self.fid, page_no)
        frame[0] = stamp
        self.pool.mark_dirty(self.fid, page_no)
        data = bytearray(self.model[page_no])
        data[0] = stamp
        self.model[page_no] = bytes(data)

    @rule(page_no=pages)
    def read(self, page_no):
        frame = self.pool.get_page(self.fid, page_no)
        assert bytes(frame) == self.model[page_no]

    @rule()
    def flush(self):
        self.pool.flush_all()

    @rule()
    def clear(self):
        self.pool.clear()

    @invariant()
    def capacity_respected(self):
        assert self.pool.resident_pages <= self.pool.capacity

    def teardown(self):
        # Final durability check: everything lands on disk correctly.
        self.pool.clear()
        for page_no, expected in self.model.items():
            assert self.disk.read_page(self.fid, page_no) == expected


TestHeapFileStateful = HeapFileMachine.TestCase
TestHeapFileStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

TestBufferPoolStateful = BufferPoolMachine.TestCase
TestBufferPoolStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
