"""Tests for spatial tuple serialisation."""

import pytest
from hypothesis import given

from repro.geometry import Polygon, Polyline
from repro.storage import (
    SpatialTuple,
    deserialize_tuple,
    serialize_tuple,
    tuple_size_bytes,
)
from tests.conftest import polyline_points


def polyline_tuple(points=None, name="road-1"):
    return SpatialTuple(
        feature_id=42,
        category=1,
        name=name,
        geom=Polyline(points or [(0, 0), (1, 2), (3, 1)]),
    )


def polygon_tuple(holes=()):
    return SpatialTuple(
        feature_id=7,
        category=10,
        name="landuse-7",
        geom=Polygon([(0, 0), (10, 0), (10, 10), (0, 10)], holes),
    )


class TestRoundtrip:
    def test_polyline(self):
        t = polyline_tuple()
        back = deserialize_tuple(serialize_tuple(t))
        assert back == t

    def test_polygon(self):
        t = polygon_tuple()
        back = deserialize_tuple(serialize_tuple(t))
        assert back == t

    def test_swiss_cheese_polygon(self):
        t = polygon_tuple(holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]])
        back = deserialize_tuple(serialize_tuple(t))
        assert back == t
        assert len(back.geom.holes) == 1

    def test_unicode_name(self):
        t = polyline_tuple(name="rivière-éøü")
        assert deserialize_tuple(serialize_tuple(t)).name == "rivière-éøü"

    def test_empty_name(self):
        t = polyline_tuple(name="")
        assert deserialize_tuple(serialize_tuple(t)).name == ""

    @given(polyline_points(max_points=20))
    def test_arbitrary_polylines(self, pts):
        t = SpatialTuple(1, 2, "x", Polyline(pts))
        assert deserialize_tuple(serialize_tuple(t)) == t


class TestSizing:
    def test_size_matches_serialisation(self):
        for t in (polyline_tuple(), polygon_tuple(), polygon_tuple(
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]]
        )):
            assert tuple_size_bytes(t) == len(serialize_tuple(t))

    def test_paperlike_road_tuple_size(self):
        # A TIGER road tuple with 8 points should serialise to roughly the
        # paper's ~137 bytes/tuple.
        t = SpatialTuple(1, 1, "road-00001", Polyline([(i, i) for i in range(8)]))
        assert 120 <= tuple_size_bytes(t) <= 200


class TestErrors:
    def test_unsupported_geometry(self):
        t = SpatialTuple(1, 1, "bad", geom="not a geometry")  # type: ignore
        with pytest.raises(TypeError):
            serialize_tuple(t)

    def test_garbage_tag(self):
        data = bytearray(serialize_tuple(polyline_tuple()))
        data[0] = 99
        with pytest.raises(ValueError):
            deserialize_tuple(bytes(data))


class TestAccessors:
    def test_mbr_delegates_to_geometry(self):
        t = polyline_tuple()
        assert t.mbr == t.geom.mbr

    def test_num_points(self):
        assert polyline_tuple().num_points == 3
        assert polygon_tuple().num_points == 4
