"""Tests for the disk-space budget ledger and the ENOSPC injector."""

import pickle

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.faults.inject import DiskFullInjector
from repro.storage import (
    CATEGORIES,
    DiskBudget,
    DiskFullError,
    StorageError,
)


class TestLedger:
    def test_charge_and_release_round_trip(self):
        budget = DiskBudget(100)
        budget.charge(60, "spill")
        assert budget.used == 60
        assert budget.available() == 40
        budget.release(60, "spill")
        assert budget.used == 0
        assert budget.available() == 100

    def test_high_watermark_survives_release(self):
        budget = DiskBudget()
        budget.charge(80, "spill")
        budget.release(80, "spill")
        budget.charge(10, "checkpoint")
        assert budget.high_watermark == 80
        assert budget.used == 10

    def test_exact_fit_allowed_next_byte_denied(self):
        budget = DiskBudget(100)
        budget.charge(100, "spill")
        with pytest.raises(DiskFullError):
            budget.charge(1, "spill")

    def test_denial_leaves_ledger_untouched(self):
        budget = DiskBudget(50)
        budget.charge(30, "spill")
        with pytest.raises(DiskFullError) as exc_info:
            budget.charge(40, "checkpoint")
        # The denied write was never accounted anywhere: a caller that
        # catches the error and walks away leaves a consistent ledger.
        assert budget.used == 30
        assert budget.charges == 1
        assert budget.denials == 1
        assert budget.charged_clock == {"spill": 30}
        exc = exc_info.value
        assert exc.category == "checkpoint"
        assert exc.requested == 40
        assert exc.used == 30
        assert exc.max_bytes == 50
        assert not exc.injected

    def test_per_category_accounting(self):
        budget = DiskBudget()
        budget.charge(10, "spill")
        budget.charge(20, "spill")
        budget.charge(5, "checkpoint")
        budget.release(25, "spill")
        snap = budget.snapshot()
        assert snap["by_category"] == {"checkpoint": 5, "spill": 5}
        assert snap["peak_by_category"] == {"checkpoint": 5, "spill": 30}

    def test_cross_category_release_clamps_but_frees_headroom(self):
        # The serve cache frees run directories the checkpoint store
        # charged: the global ledger must drop, no category may go
        # negative.
        budget = DiskBudget(100)
        budget.charge(90, "checkpoint")
        budget.release(90, "cache")
        assert budget.used == 0
        assert budget.by_category["cache"] == 0
        assert budget.by_category["checkpoint"] == 90  # never charged back
        budget.charge(100, "spill")  # the headroom is genuinely free

    def test_release_clamps_at_zero(self):
        budget = DiskBudget()
        budget.charge(10, "spill")
        budget.release(10_000, "spill")
        assert budget.used == 0
        assert budget.by_category["spill"] == 0

    def test_charged_clock_is_monotonic(self):
        budget = DiskBudget()
        budget.charge(10, "spill")
        budget.release(10, "spill")
        budget.charge(10, "spill")
        assert budget.charged_clock["spill"] == 20

    def test_unbounded_budget_meters_without_denying(self):
        budget = DiskBudget()
        budget.charge(1 << 40, "spill")
        assert budget.available() is None
        assert budget.would_fit(1 << 40)
        assert budget.denials == 0

    def test_would_fit(self):
        budget = DiskBudget(10)
        assert budget.would_fit(10)
        budget.charge(4, "spill")
        assert budget.would_fit(6)
        assert not budget.would_fit(7)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            DiskBudget().charge(-1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            DiskBudget(-1)

    def test_zero_budget_denies_first_byte(self):
        budget = DiskBudget(0)
        budget.charge(0, "spill")  # zero-byte writes are free
        with pytest.raises(DiskFullError):
            budget.charge(1, "spill")

    def test_snapshot_shape(self):
        snap = DiskBudget(42).snapshot()
        assert set(snap) == {
            "max_bytes", "used_bytes", "high_watermark_bytes",
            "by_category", "peak_by_category", "charges", "denials",
        }
        assert snap["max_bytes"] == 42

    def test_known_categories(self):
        assert set(CATEGORIES) == {"spill", "checkpoint", "cache", "journal"}


class TestDiskFullError:
    def test_is_typed_storage_error_and_oserror(self):
        exc = DiskFullError("full")
        assert isinstance(exc, StorageError)
        assert isinstance(exc, OSError)

    def test_pickle_round_trip(self):
        # The error crosses process boundaries under spawn; every field
        # the recovery paths and journals read must survive.
        exc = DiskFullError(
            "full", category="spill", requested=7,
            used=93, max_bytes=100, injected=True,
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, DiskFullError)
        assert str(clone) == str(exc)
        assert clone.category == "spill"
        assert clone.requested == 7
        assert clone.used == 93
        assert clone.max_bytes == 100
        assert clone.injected


def plan_with_points(*points):
    return FaultPlan(
        seed=0, num_pairs=8, spec=FaultSpec(),
        disk_full_points=tuple(points),
    )


class TestDiskFullInjector:
    def test_one_shot_denial_then_retry_succeeds(self):
        injector = DiskFullInjector(plan_with_points(("spill", 10)))
        budget = DiskBudget(injector=injector)
        budget.charge(8, "spill")  # [0, 8) misses ordinal 10
        with pytest.raises(DiskFullError) as exc_info:
            budget.charge(8, "spill")  # [8, 16) crosses it
        assert exc_info.value.injected
        assert exc_info.value.requested == 8
        # The clock did not advance on the denial, so the retried charge
        # covers the same interval — with the point now spent.
        assert budget.charged_clock["spill"] == 8
        budget.charge(8, "spill")
        assert budget.charged_clock["spill"] == 16
        assert not injector.armed

    def test_one_denial_spends_every_crossed_ordinal(self):
        # Recovery paths retry exactly once: two points inside one charge
        # interval must not demand two retries of one write.
        injector = DiskFullInjector(
            plan_with_points(("spill", 5), ("spill", 7))
        )
        budget = DiskBudget(injector=injector)
        with pytest.raises(DiskFullError):
            budget.charge(20, "spill")
        assert injector.fired == 2
        budget.charge(20, "spill")
        assert not injector.armed

    def test_categories_are_independent(self):
        injector = DiskFullInjector(plan_with_points(("checkpoint", 0)))
        budget = DiskBudget(injector=injector)
        budget.charge(100, "spill")  # never consults checkpoint's points
        with pytest.raises(DiskFullError):
            budget.charge(1, "checkpoint")

    def test_unarmed_injector_is_inert(self):
        injector = DiskFullInjector(None)
        assert not injector.armed
        budget = DiskBudget(injector=injector)
        budget.charge(1 << 20, "spill")

    def test_injection_does_not_count_as_budget_denial(self):
        injector = DiskFullInjector(plan_with_points(("spill", 0)))
        budget = DiskBudget(1 << 20, injector=injector)
        with pytest.raises(DiskFullError):
            budget.charge(1, "spill")
        # The ceiling never denied anything; only the injector fired.
        assert budget.denials == 0
        assert injector.fired == 1
