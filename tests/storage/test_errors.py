"""The typed storage-error hierarchy and its backward compatibility."""

import pytest

from repro.storage import (
    PageSizeError,
    SpillCorruptionError,
    StorageError,
    UnallocatedPageError,
    UnknownFileError,
)
from repro.storage.disk import PAGE_SIZE, SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk()


class TestDiskErrors:
    def test_read_of_unallocated_page(self, disk):
        fid = disk.create_file()
        with pytest.raises(UnallocatedPageError):
            disk.read_page(fid, 0)

    def test_write_of_unallocated_page(self, disk):
        fid = disk.create_file()
        with pytest.raises(UnallocatedPageError):
            disk.write_page(fid, 3, b"\x00" * PAGE_SIZE)

    def test_wrong_page_size(self, disk):
        fid = disk.create_file()
        page = disk.allocate_page(fid)
        with pytest.raises(PageSizeError):
            disk.write_page(fid, page, b"short")

    def test_unknown_file(self, disk):
        with pytest.raises(UnknownFileError):
            disk.drop_file(999)
        with pytest.raises(UnknownFileError):
            disk.file_length(999)


class TestHierarchy:
    def test_everything_is_a_storage_error(self, disk):
        fid = disk.create_file()
        with pytest.raises(StorageError):
            disk.read_page(fid, 0)
        with pytest.raises(StorageError):
            disk.drop_file(12345)
        page = disk.allocate_page(fid)
        with pytest.raises(StorageError):
            disk.write_page(fid, page, b"")

    def test_builtin_compatibility_is_preserved(self, disk):
        # Pre-hierarchy callers caught KeyError / ValueError; the typed
        # replacements must keep satisfying those handlers.
        fid = disk.create_file()
        with pytest.raises(KeyError):
            disk.read_page(fid, 0)
        with pytest.raises(KeyError):
            disk.file_length(31337)
        page = disk.allocate_page(fid)
        with pytest.raises(ValueError):
            disk.write_page(fid, page, b"x")
        assert issubclass(SpillCorruptionError, ValueError)
        assert issubclass(UnallocatedPageError, KeyError)

    def test_key_errors_print_readably(self, disk):
        # KeyError repr-quotes str(); the typed subclasses undo that so
        # logs show the message, not a quoted blob.
        fid = disk.create_file()
        try:
            disk.read_page(fid, 7)
        except UnallocatedPageError as exc:
            assert "'" not in str(exc)[:1]
            assert "7" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected UnallocatedPageError")
