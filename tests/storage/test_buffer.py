"""Tests for the LRU buffer pool."""

import pytest

from repro.storage import (
    PAGE_SIZE,
    BufferPool,
    BufferPoolError,
    SimulatedDisk,
    pages_for_megabytes,
)


def make_pool(capacity=4):
    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity)
    fid = disk.create_file()
    return disk, pool, fid


class TestBasics:
    def test_capacity_validation(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            BufferPool(disk, 0)

    def test_pages_for_megabytes(self):
        assert pages_for_megabytes(2.0) == 2 * 1024 * 1024 // PAGE_SIZE
        with pytest.raises(ValueError):
            pages_for_megabytes(0.000001)

    def test_new_page_visible_without_disk_read(self):
        disk, pool, fid = make_pool()
        page_no = pool.new_page(fid)
        data = pool.get_page(fid, page_no)
        assert len(data) == PAGE_SIZE
        assert disk.stats.page_reads == 0

    def test_miss_then_hit(self):
        disk, pool, fid = make_pool()
        page_no = pool.new_page(fid)
        pool.clear()
        pool.reset_counters()
        pool.get_page(fid, page_no)
        pool.get_page(fid, page_no)
        assert pool.misses == 1
        assert pool.hits == 1
        assert disk.stats.page_reads == 1

    def test_hit_rate(self):
        disk, pool, fid = make_pool()
        page_no = pool.new_page(fid)
        pool.reset_counters()
        pool.get_page(fid, page_no)
        pool.get_page(fid, page_no)
        assert pool.hit_rate() == pytest.approx(1.0)


class TestDirtyTracking:
    def test_mutation_persists_after_flush(self):
        disk, pool, fid = make_pool()
        page_no = pool.new_page(fid)
        frame = pool.get_page(fid, page_no)
        frame[0:4] = b"abcd"
        pool.mark_dirty(fid, page_no)
        pool.flush_all()
        assert disk.read_page(fid, page_no)[0:4] == b"abcd"

    def test_mark_dirty_nonresident_raises(self):
        disk, pool, fid = make_pool()
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(fid, 99)

    def test_flush_all_is_idempotent(self):
        disk, pool, fid = make_pool()
        pool.new_page(fid)
        pool.flush_all()
        writes = disk.stats.page_writes
        pool.flush_all()
        assert disk.stats.page_writes == writes


class TestEviction:
    def test_lru_eviction_order(self):
        disk, pool, fid = make_pool(capacity=2)
        p0 = pool.new_page(fid)
        p1 = pool.new_page(fid)
        pool.flush_all()
        pool.get_page(fid, p0)  # p0 becomes MRU
        pool.new_page(fid)  # must evict p1 (LRU)
        resident = {pn for _f, pn in pool.resident_page_ids()}
        assert p0 in resident
        assert p1 not in resident

    def test_evicting_dirty_page_writes_it(self):
        disk, pool, fid = make_pool(capacity=1)
        p0 = pool.new_page(fid)
        frame = pool.get_page(fid, p0)
        frame[0:2] = b"hi"
        pool.mark_dirty(fid, p0)
        pool.new_page(fid)  # evicts p0
        assert disk.read_page(fid, p0)[0:2] == b"hi"

    def test_pinned_page_survives_eviction(self):
        disk, pool, fid = make_pool(capacity=2)
        p0 = pool.new_page(fid, pin=True)
        pool.new_page(fid)
        pool.new_page(fid)  # must evict the unpinned one
        resident = {pn for _f, pn in pool.resident_page_ids()}
        assert p0 in resident

    def test_all_pinned_raises(self):
        disk, pool, fid = make_pool(capacity=1)
        pool.new_page(fid, pin=True)
        with pytest.raises(BufferPoolError):
            pool.new_page(fid)

    def test_unpin_allows_eviction(self):
        disk, pool, fid = make_pool(capacity=1)
        p0 = pool.new_page(fid, pin=True)
        pool.unpin(fid, p0)
        pool.new_page(fid)  # fine now

    def test_unpin_unpinned_raises(self):
        disk, pool, fid = make_pool()
        p0 = pool.new_page(fid)
        with pytest.raises(BufferPoolError):
            pool.unpin(fid, p0)

    def test_capacity_respected(self):
        disk, pool, fid = make_pool(capacity=3)
        for _ in range(10):
            pool.new_page(fid)
        assert pool.resident_pages <= 3


class TestClusteredFlush:
    def test_eviction_flushes_other_dirty_pages_clustered(self):
        # SHORE behaviour: when a dirty page must go, dirty neighbours are
        # written too, sorted, making the writes mostly sequential.
        disk, pool, fid = make_pool(capacity=4)
        for _ in range(4):
            pool.new_page(fid)  # all dirty: pages 0..3
        pool.new_page(fid)  # triggers eviction
        # All four dirty pages were flushed in one sorted batch.
        assert disk.stats.page_writes >= 4
        assert disk.stats.random_writes <= 1

    def test_flush_all_sorted(self):
        disk, pool, fid = make_pool(capacity=8)
        pages = [pool.new_page(fid) for _ in range(6)]
        # Touch in reverse to scramble LRU order.
        for p in reversed(pages):
            pool.get_page(fid, p)
        pool.flush_all()
        assert disk.stats.page_writes == 6
        assert disk.stats.random_writes == 1


class TestClearAndInvalidate:
    def test_clear_flushes_and_empties(self):
        disk, pool, fid = make_pool()
        pool.new_page(fid)
        pool.clear()
        assert pool.resident_pages == 0
        assert disk.stats.page_writes == 1

    def test_clear_with_pinned_raises(self):
        disk, pool, fid = make_pool()
        pool.new_page(fid, pin=True)
        with pytest.raises(BufferPoolError):
            pool.clear()

    def test_invalidate_file_drops_without_writing(self):
        disk, pool, fid = make_pool()
        pool.new_page(fid)
        other = disk.create_file()
        pool.new_page(other)
        pool.invalidate_file(fid)
        assert all(f != fid for f, _p in pool.resident_page_ids())
        assert disk.stats.page_writes == 0
