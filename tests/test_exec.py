"""Tests for the executor: complex queries whose join inputs are
intermediate results — the paper's opening motivation for PBSM."""

import pytest

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.exec import (
    Filter,
    Limit,
    Materialize,
    RelationScan,
    SpatialJoin,
    WindowFilter,
)
from repro.geometry import Rect


@pytest.fixture(scope="module")
def db_and_rels():
    db = Database(buffer_mb=2.0)
    rels = make_tiger_datasets(db, scale=0.002, include=("road", "hydro"))
    return db, rels


class TestScanFilterLimit:
    def test_scan_yields_everything(self, db_and_rels):
        _db, rels = db_and_rels
        rows = list(RelationScan(rels["road"]))
        assert len(rows) == len(rels["road"])

    def test_filter_on_attributes(self, db_and_rels):
        _db, rels = db_and_rels
        even = Filter(
            RelationScan(rels["road"]), lambda t: t.feature_id % 2 == 0
        )
        rows = list(even)
        assert rows
        assert all(t.feature_id % 2 == 0 for _oid, t in rows)

    def test_window_filter(self, db_and_rels):
        _db, rels = db_and_rels
        window = Rect(-90.5, 43.0, -88.5, 45.0)
        rows = list(WindowFilter(RelationScan(rels["road"]), window))
        expected = [
            (oid, t) for oid, t in rels["road"].scan() if t.mbr.intersects(window)
        ]
        assert rows == expected

    def test_limit(self, db_and_rels):
        _db, rels = db_and_rels
        assert len(list(Limit(RelationScan(rels["road"]), 7))) == 7
        with pytest.raises(ValueError):
            Limit(RelationScan(rels["road"]), -1)

    def test_operators_are_restartable(self, db_and_rels):
        _db, rels = db_and_rels
        op = Filter(RelationScan(rels["road"]), lambda t: True)
        assert list(op) == list(op)


class TestMaterialize:
    def test_materialized_relation_has_rows(self, db_and_rels):
        db, rels = db_and_rels
        mat = Materialize(
            db.pool, Filter(RelationScan(rels["road"]), lambda t: t.feature_id < 50)
        )
        rel = mat.relation()
        assert len(rel) == 50
        assert rel.name.startswith("__temp_")

    def test_runs_child_once(self, db_and_rels):
        db, rels = db_and_rels
        calls = []

        def spy(t):
            calls.append(1)
            return True

        mat = Materialize(db.pool, Filter(RelationScan(rels["road"]), spy))
        list(mat)
        first = len(calls)
        list(mat)
        assert len(calls) == first  # cached, not re-run

    def test_drop_releases_storage(self, db_and_rels):
        db, rels = db_and_rels
        mat = Materialize(db.pool, Limit(RelationScan(rels["road"]), 5))
        fid = mat.relation().file_id
        mat.drop()
        assert fid not in db.disk.file_ids()


class TestComplexQuery:
    def test_join_of_intermediate_results(self, db_and_rels):
        """SELECT ... FROM roads r, hydro h
        WHERE r.category-filter AND h.window-filter AND intersects(r, h)."""
        db, rels = db_and_rels
        window = Rect(-91.0, 42.49, -86.8, 46.0)
        left = Filter(RelationScan(rels["road"]), lambda t: t.feature_id % 3 == 0)
        right = WindowFilter(RelationScan(rels["hydro"]), window)
        join = SpatialJoin(db.pool, left, right, intersects)
        pairs = join.pairs()

        # Oracle: evaluate the same query by brute force over base tables.
        expected = set()
        for _ro, rt in rels["road"].scan():
            if rt.feature_id % 3 != 0:
                continue
            for _so, st in rels["hydro"].scan():
                if not st.mbr.intersects(window):
                    continue
                if intersects(rt, st):
                    expected.add((rt.feature_id, st.feature_id))
        got = {(t_l.feature_id, t_r.feature_id) for (_o1, t_l), (_o2, t_r) in pairs}
        assert got == expected

    def test_planner_picks_pbsm_on_intermediates(self):
        """Intermediate results carry no index, so the planner must choose
        PBSM — the paper's motivating scenario, end to end.  The pool is
        deliberately small so neither intermediate is memory-resident
        (otherwise the planner's Figure-8 INL exception legitimately
        applies)."""
        db = Database(buffer_mb=0.25)
        rels = make_tiger_datasets(db, scale=0.003, include=("road", "hydro"))
        join = SpatialJoin(
            db.pool,
            Filter(RelationScan(rels["road"]), lambda t: t.feature_id % 2 == 0),
            RelationScan(rels["hydro"]),
            intersects,
        )
        join.pairs()
        assert join.last_report is not None
        assert join.last_report.notes["plan"] == "pbsm"

    def test_join_rows_are_distinct_left_rows(self, db_and_rels):
        db, rels = db_and_rels
        join = SpatialJoin(
            db.pool,
            RelationScan(rels["road"]),
            RelationScan(rels["hydro"]),
            intersects,
        )
        rows = list(join)
        oids = [oid for oid, _t in rows]
        assert len(oids) == len(set(oids))

    def test_empty_side(self, db_and_rels):
        db, rels = db_and_rels
        join = SpatialJoin(
            db.pool,
            Filter(RelationScan(rels["road"]), lambda t: False),
            RelationScan(rels["hydro"]),
            intersects,
        )
        assert join.pairs() == []
