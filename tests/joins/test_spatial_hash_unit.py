"""Unit tests for the LR96 spatial hash join internals."""

import pytest

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.geometry import Rect
from repro.joins import SpatialHashJoin


@pytest.fixture(scope="module")
def workload():
    db = Database(buffer_mb=2.0)
    rels = make_tiger_datasets(db, scale=0.002, include=("road", "hydro"))
    return db, rels


class TestSeeding:
    def test_seed_extents_cover_samples(self, workload):
        db, rels = workload
        shj = SpatialHashJoin(db.pool)
        seeds = shj._seed_extents(rels["road"], num_buckets=8)
        assert 1 <= len(seeds) <= 8
        cover = Rect.union_all(seeds)
        # Every sampled MBR lies inside some seed by construction; the seed
        # cover therefore overlaps the relation's universe substantially.
        universe = rels["road"].universe
        assert cover.overlap_area(universe) > 0.5 * cover.area

    def test_more_buckets_than_samples_clamped(self, workload):
        db, rels = workload
        shj = SpatialHashJoin(db.pool, sample_size=4)
        seeds = shj._seed_extents(rels["road"], num_buckets=1000)
        assert len(seeds) <= 1000

    def test_choose_bucket_prefers_containing_extent(self):
        seeds = [Rect(0, 0, 10, 10), Rect(100, 100, 110, 110)]
        extents = [None, None]
        idx = SpatialHashJoin._choose_bucket(seeds, extents, Rect(2, 2, 3, 3))
        assert idx == 0
        idx = SpatialHashJoin._choose_bucket(seeds, extents, Rect(105, 105, 106, 106))
        assert idx == 1

    def test_choose_bucket_uses_grown_extents(self):
        seeds = [Rect(0, 0, 1, 1), Rect(50, 50, 51, 51)]
        extents = [Rect(0, 0, 40, 40), None]
        # The point sits nearer seed 1 but inside extent 0 -> no enlargement.
        idx = SpatialHashJoin._choose_bucket(seeds, extents, Rect(35, 35, 36, 36))
        assert idx == 0


class TestReportShape:
    def test_phases_and_notes(self, workload):
        db, rels = workload
        res = SpatialHashJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        names = [p.name for p in res.report.phases]
        assert names == [
            "Sample & Seed",
            "Partition road",
            "Partition hydro",
            "Join Buckets",
            "Refinement",
        ]
        assert res.report.notes["num_buckets"] >= 1

    def test_r_side_never_replicated(self, workload):
        """LR96's defining property: R tuples go to exactly one bucket."""
        db, rels = workload
        shj = SpatialHashJoin(db.pool, memory_bytes=8192)
        res = shj.run(rels["road"], rels["hydro"], intersects)
        # If R were replicated, the same (r, s) pair could be emitted from
        # two buckets; candidates would then exceed the distinct MBR pairs.
        mbr_pairs = sum(
            1
            for _ro, rt in rels["road"].scan()
            for _so, st in rels["hydro"].scan()
            if rt.mbr.intersects(st.mbr)
        )
        assert res.report.candidates == mbr_pairs
