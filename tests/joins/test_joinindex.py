"""Tests for the Rot91 spatial join index."""

import pytest

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.joins import NaiveNestedLoopsJoin
from repro.joins.joinindex import SpatialJoinIndex


@pytest.fixture(scope="module")
def workload():
    db = Database(buffer_mb=2.0)
    rels = make_tiger_datasets(db, scale=0.0015, include=("road", "hydro"))
    expected = NaiveNestedLoopsJoin(db.pool).run(
        rels["road"], rels["hydro"], intersects
    ).pairs
    return db, rels, expected


class TestBuild:
    def test_index_is_filter_superset(self, workload):
        db, rels, expected = workload
        ji = SpatialJoinIndex.build(db.pool, rels["road"], rels["hydro"])
        stored = set(ji.candidate_file.read_all())
        assert set(expected).issubset(stored)
        # And exactly the MBR-overlap pairs, no more.
        mbr_pairs = {
            (ro, so)
            for ro, rt in rels["road"].scan()
            for so, st in rels["hydro"].scan()
            if rt.mbr.intersects(st.mbr)
        }
        assert stored == mbr_pairs

    def test_build_report_phases(self, workload):
        db, rels, _ = workload
        ji = SpatialJoinIndex.build(db.pool, rels["road"], rels["hydro"])
        names = [p.name for p in ji.build_report.phases]
        assert names == [
            "Build road Grid",
            "Build hydro Grid",
            "Compute Join Index",
        ]

    def test_empty_inputs(self, workload):
        db, rels, _ = workload
        empty = db.create_relation("ji-empty")
        ji = SpatialJoinIndex.build(db.pool, empty, rels["hydro"])
        assert len(ji) == 0
        assert ji.query(intersects).pairs == []


class TestQuery:
    def test_query_matches_oracle(self, workload):
        db, rels, expected = workload
        ji = SpatialJoinIndex.build(db.pool, rels["road"], rels["hydro"])
        result = ji.query(intersects)
        assert result.pairs == expected

    def test_repeated_queries_cheap(self, workload):
        db, rels, _ = workload
        ji = SpatialJoinIndex.build(db.pool, rels["road"], rels["hydro"])
        first = ji.query(intersects)
        second = ji.query(intersects)
        assert first.pairs == second.pairs
        # No grid or filter work at query time: just index scan + refine.
        assert {p.name for p in second.report.phases} == {
            "Scan Join Index",
            "Refinement",
        }

    def test_drop_releases_storage(self, workload):
        db, rels, _ = workload
        files_before = set(db.disk.file_ids())
        ji = SpatialJoinIndex.build(db.pool, rels["road"], rels["hydro"])
        ji.drop()
        # Grid-file buckets remain (they are the persistent access method),
        # but the candidate file is gone.
        assert ji.candidate_file.heap.file_id not in db.disk.file_ids()
        del files_before
