"""Cross-validation of the INL, R-tree and spatial-hash join drivers."""

import pytest

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.index import bulk_load_rstar
from repro.joins import (
    IndexedNestedLoopsJoin,
    NaiveNestedLoopsJoin,
    RTreeJoin,
    SpatialHashJoin,
)


@pytest.fixture(scope="module")
def workload():
    db = Database(buffer_mb=4.0)
    rels = make_tiger_datasets(db, scale=0.0015)
    oracle = NaiveNestedLoopsJoin(db.pool).run(
        rels["road"], rels["hydro"], intersects
    )
    return db, rels, oracle.pairs


class TestINL:
    def test_matches_oracle(self, workload):
        db, rels, expected = workload
        res = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        )
        assert res.pairs == expected

    def test_builds_index_on_smaller_input(self, workload):
        db, rels, _ = workload
        res = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        )
        assert res.report.notes["built_index_on"] == "hydro"
        assert any("Build hydro Index" == p.name for p in res.report.phases)

    def test_uses_preexisting_index_r(self, workload):
        db, rels, expected = workload
        idx = bulk_load_rstar(db.pool, rels["road"])
        res = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_r=idx
        )
        assert res.pairs == expected
        assert "built_index_on" not in res.report.notes

    def test_uses_preexisting_index_s(self, workload):
        db, rels, expected = workload
        idx = bulk_load_rstar(db.pool, rels["hydro"])
        res = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_s=idx
        )
        assert res.pairs == expected

    def test_both_indices_probes_smaller(self, workload):
        db, rels, expected = workload
        idx_r = bulk_load_rstar(db.pool, rels["road"])
        idx_s = bulk_load_rstar(db.pool, rels["hydro"])
        res = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_r=idx_r, index_s=idx_s
        )
        assert res.pairs == expected
        # No build phase at all.
        assert all("Build" not in p.name for p in res.report.phases)

    def test_empty_input(self, workload):
        db, rels, _ = workload
        empty = db.create_relation("inl-empty")
        res = IndexedNestedLoopsJoin(db.pool).run(empty, rels["hydro"], intersects)
        assert res.pairs == []


class TestRTreeJoinDriver:
    def test_matches_oracle(self, workload):
        db, rels, expected = workload
        res = RTreeJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_builds_both_indices(self, workload):
        db, rels, _ = workload
        res = RTreeJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        names = [p.name for p in res.report.phases]
        assert "Build road Index" in names
        assert "Build hydro Index" in names
        assert "Join Indices" in names
        assert "Refinement" in names

    def test_skips_existing_indices(self, workload):
        db, rels, expected = workload
        idx_r = bulk_load_rstar(db.pool, rels["road"])
        idx_s = bulk_load_rstar(db.pool, rels["hydro"])
        res = RTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_r=idx_r, index_s=idx_s
        )
        assert res.pairs == expected
        assert all("Build" not in p.name for p in res.report.phases)

    def test_one_existing_index(self, workload):
        db, rels, expected = workload
        idx_r = bulk_load_rstar(db.pool, rels["road"])
        res = RTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_r=idx_r
        )
        assert res.pairs == expected
        names = [p.name for p in res.report.phases]
        assert "Build road Index" not in names
        assert "Build hydro Index" in names

    def test_candidate_count_at_least_results(self, workload):
        db, rels, _ = workload
        res = RTreeJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.report.candidates >= res.report.result_count


class TestSpatialHashJoin:
    def test_matches_oracle(self, workload):
        db, rels, expected = workload
        res = SpatialHashJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_matches_oracle_many_buckets(self, workload):
        db, rels, expected = workload
        res = SpatialHashJoin(db.pool, memory_bytes=8192).run(
            rels["road"], rels["hydro"], intersects
        )
        assert res.report.notes["num_buckets"] > 1
        assert res.pairs == expected

    def test_empty_inputs(self, workload):
        db, rels, _ = workload
        empty = db.create_relation("shj-empty")
        assert SpatialHashJoin(db.pool).run(empty, rels["hydro"], intersects).pairs == []


class TestClusteredVariants:
    def test_all_algorithms_on_clustered_data(self):
        db = Database(buffer_mb=4.0)
        rels = make_tiger_datasets(db, scale=0.001, clustered=True)
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        ).pairs
        from repro import PBSMJoin

        assert PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects).pairs == expected
        assert IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, s_clustered=True
        ).pairs == expected
        assert RTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects,
            r_clustered=True, s_clustered=True,
        ).pairs == expected
