"""Tests for the Orenstein z-order spatial join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.geometry import Rect
from repro.joins import NaiveNestedLoopsJoin, ZOrderConfig, ZOrderJoin
from repro.joins.zorder import decompose_rect, zmerge
from repro.storage import OID

UNIVERSE = Rect(0.0, 0.0, 100.0, 100.0)


@st.composite
def universe_rects(draw):
    x = draw(st.floats(min_value=0, max_value=99))
    y = draw(st.floats(min_value=0, max_value=99))
    w = draw(st.floats(min_value=0, max_value=40))
    h = draw(st.floats(min_value=0, max_value=40))
    return Rect(x, y, min(x + w, 100.0), min(y + h, 100.0))


def cells_cover(rect: Rect, intervals, max_level):
    """Check coverage by sampling points of the rect and locating their cell."""
    from repro.geometry import morton_d

    side = 1 << max_level
    points = [
        (rect.xl, rect.yl), (rect.xu, rect.yu), rect.center,
        (rect.xl, rect.yu), (rect.xu, rect.yl),
    ]
    for x, y in points:
        cx = min(int((x - UNIVERSE.xl) / UNIVERSE.width * side), side - 1)
        cy = min(int((y - UNIVERSE.yl) / UNIVERSE.height * side), side - 1)
        z = morton_d(cx, cy, order=max_level)
        if not any(lo <= z <= hi for lo, hi in intervals):
            return False
    return True


class TestDecomposition:
    def test_universe_is_one_interval(self):
        cells = decompose_rect(UNIVERSE, UNIVERSE, max_level=6)
        assert cells == [(0, (1 << 12) - 1)]

    def test_outside_universe_empty(self):
        assert decompose_rect(Rect(200, 200, 210, 210), UNIVERSE) == []

    def test_intervals_sorted_and_disjoint(self):
        cells = decompose_rect(Rect(10, 10, 42, 33), UNIVERSE, max_level=6)
        for (lo1, hi1), (lo2, hi2) in zip(cells, cells[1:]):
            assert hi1 < lo2
        assert all(lo <= hi for lo, hi in cells)

    @given(universe_rects(), st.integers(min_value=2, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_cells_cover_rect(self, rect, max_level):
        cells = decompose_rect(rect, UNIVERSE, max_level=max_level)
        assert cells
        assert cells_cover(rect, cells, max_level)

    def test_cell_budget_respected(self):
        # A long thin rectangle would need many cells; the budget caps it.
        rect = Rect(0.1, 50.0, 99.9, 50.5)
        few = decompose_rect(rect, UNIVERSE, max_level=8, max_cells=4)
        many = decompose_rect(rect, UNIVERSE, max_level=8, max_cells=64)
        assert len(few) <= len(many)
        assert cells_cover(rect, few, 8)

    def test_finer_level_tightens_approximation(self):
        rect = Rect(10, 10, 11, 11)
        coarse = decompose_rect(rect, UNIVERSE, max_level=3, max_cells=64)
        fine = decompose_rect(rect, UNIVERSE, max_level=8, max_cells=64)

        def covered_fraction(cells, max_level):
            return sum(hi - lo + 1 for lo, hi in cells) / 4**max_level

        assert covered_fraction(fine, 8) < covered_fraction(coarse, 3)


class TestZMerge:
    def test_nested_intervals_pair(self):
        r = [(0, 63, OID(1, 0, 0))]
        s = [(16, 31, OID(2, 0, 0))]
        out = []
        zmerge(r, s, lambda a, b: out.append((a, b)))
        assert out == [(OID(1, 0, 0), OID(2, 0, 0))]

    def test_disjoint_intervals_do_not_pair(self):
        r = [(0, 15, OID(1, 0, 0))]
        s = [(16, 31, OID(2, 0, 0))]
        out = []
        zmerge(r, s, lambda a, b: out.append((a, b)))
        assert out == []

    def test_pair_order_is_r_then_s(self):
        r = [(16, 31, OID(1, 0, 0))]
        s = [(0, 63, OID(2, 0, 0))]
        out = []
        zmerge(r, s, lambda a, b: out.append((a, b)))
        assert out == [(OID(1, 0, 0), OID(2, 0, 0))]

    def test_matches_brute_force(self):
        import numpy as np

        rng = np.random.default_rng(3)

        def random_elems(file_id, n):
            elems = []
            for i in range(n):
                level = rng.integers(0, 4)
                span = 4 ** (4 - level)
                start = rng.integers(0, 4**4 // span) * span
                elems.append((int(start), int(start + span - 1), OID(file_id, i, 0)))
            return sorted(elems, key=lambda e: (e[0], -e[1]))

        r, s = random_elems(1, 40), random_elems(2, 40)
        out = []
        zmerge(r, s, lambda a, b: out.append((a, b)))
        expected = sorted(
            (ro, so)
            for rlo, rhi, ro in r
            for slo, shi, so in s
            if rlo <= shi and slo <= rhi
        )
        assert sorted(out) == expected


class TestZOrderJoinDriver:
    @pytest.fixture(scope="class")
    def workload(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.0015, include=("road", "hydro"))
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        ).pairs
        return db, rels, expected

    def test_matches_oracle(self, workload):
        db, rels, expected = workload
        res = ZOrderJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    @pytest.mark.parametrize("max_level", [4, 6, 10])
    def test_matches_oracle_at_all_granularities(self, workload, max_level):
        db, rels, expected = workload
        cfg = ZOrderConfig(max_level=max_level)
        res = ZOrderJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_finer_grid_fewer_candidates(self, workload):
        db, rels, _ = workload
        coarse = ZOrderJoin(db.pool, ZOrderConfig(max_level=3)).run(
            rels["road"], rels["hydro"], intersects
        )
        fine = ZOrderJoin(db.pool, ZOrderConfig(max_level=9)).run(
            rels["road"], rels["hydro"], intersects
        )
        # The paper's [Ore89] trade-off: finer grid = better filtering
        # (fewer distinct candidates) but more z-elements per object.
        assert (
            fine.report.notes["distinct_candidates"]
            < coarse.report.notes["distinct_candidates"]
        )
        assert (
            fine.report.notes["z_elements_r"]
            > coarse.report.notes["z_elements_r"]
        )

    def test_empty_inputs(self, workload):
        db, rels, _ = workload
        empty = db.create_relation("z-empty")
        assert ZOrderJoin(db.pool).run(empty, rels["hydro"], intersects).pairs == []

    def test_report_phases(self, workload):
        db, rels, _ = workload
        res = ZOrderJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        names = [p.name for p in res.report.phases]
        assert names == [
            "Transform road",
            "Transform hydro",
            "Merge Z-Sequences",
            "Refinement",
        ]


class TestZOrderIndex:
    """[OM84]: z-values stored persistently in a B+-tree."""

    @pytest.fixture(scope="class")
    def indexed(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.0015, include=("road", "hydro"))
        universe = rels["road"].universe.union(rels["hydro"].universe)
        from repro.joins import ZOrderIndex

        idx_r = ZOrderIndex.build(db.pool, rels["road"], universe)
        idx_s = ZOrderIndex.build(db.pool, rels["hydro"], universe)
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        ).pairs
        return db, rels, idx_r, idx_s, expected

    def test_index_holds_all_elements(self, indexed):
        _db, rels, idx_r, _idx_s, _exp = indexed
        assert len(idx_r) >= len(rels["road"])  # >= 1 element per tuple

    def test_elements_satisfy_zmerge_order(self, indexed):
        _db, _rels, idx_r, _idx_s, _exp = indexed
        elems = idx_r.elements()
        keys = [(zlo, -zhi) for zlo, zhi, _oid in elems]
        assert keys == sorted(keys)

    def test_indexed_join_matches_oracle(self, indexed):
        db, rels, idx_r, idx_s, expected = indexed
        from repro.joins import zorder_join_indexed

        result = zorder_join_indexed(
            db.pool, rels["road"], rels["hydro"], idx_r, idx_s, intersects
        )
        assert result.pairs == expected
        names = [p.name for p in result.report.phases]
        assert names == ["Merge Z-Indices", "Refinement"]

    def test_universe_mismatch_rejected(self, indexed):
        db, rels, idx_r, _idx_s, _exp = indexed
        from repro.joins import ZOrderIndex, zorder_join_indexed

        other = ZOrderIndex.build(
            db.pool, rels["hydro"], Rect(0, 0, 1, 1)
        )
        with pytest.raises(ValueError):
            zorder_join_indexed(
                db.pool, rels["road"], rels["hydro"], idx_r, other, intersects
            )

    def test_index_join_matches_transform_join(self, indexed):
        db, rels, idx_r, idx_s, _exp = indexed
        from repro.joins import zorder_join_indexed

        indexed_res = zorder_join_indexed(
            db.pool, rels["road"], rels["hydro"], idx_r, idx_s, intersects
        )
        direct = ZOrderJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert indexed_res.pairs == direct.pairs
