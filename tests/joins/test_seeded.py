"""Tests for seeded trees (LR94/LR95) and their join driver."""

import pytest

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.geometry import Rect
from repro.index import bulk_load_rstar
from repro.index.seeded import (
    SeededTree,
    build_seeded_tree,
    seed_slots_from_sample,
    seed_slots_from_tree,
    seeded_tree_join,
)
from repro.joins import NaiveNestedLoopsJoin
from repro.joins.seeded import SeededTreeJoin


@pytest.fixture(scope="module")
def workload():
    db = Database(buffer_mb=2.0)
    rels = make_tiger_datasets(db, scale=0.002, include=("road", "hydro"))
    expected = NaiveNestedLoopsJoin(db.pool).run(
        rels["road"], rels["hydro"], intersects
    ).pairs
    return db, rels, expected


class TestSeeds:
    def test_slots_from_tree(self, workload):
        db, rels, _ = workload
        tree = bulk_load_rstar(db.pool, rels["hydro"])
        slots = seed_slots_from_tree(tree, max_slots=8)
        assert 1 <= len(slots) <= 8
        universe = rels["hydro"].universe
        cover = Rect.union_all(slots)
        assert cover.intersects(universe)

    def test_slots_from_tree_respects_budget(self, workload):
        db, rels, _ = workload
        tree = bulk_load_rstar(db.pool, rels["road"])
        for budget in (1, 4, 32):
            assert len(seed_slots_from_tree(tree, max_slots=budget)) <= budget

    def test_slots_from_empty_tree(self, workload):
        db, _rels, _ = workload
        from repro.index import build_from_sorted

        empty = build_from_sorted(db.pool, [])
        assert seed_slots_from_tree(empty) == []

    def test_slots_from_sample(self, workload):
        db, rels, _ = workload
        slots = seed_slots_from_sample(rels["road"], max_slots=8)
        assert 1 <= len(slots) <= 8


class TestSeededTree:
    def test_build_preserves_all_entries(self, workload):
        db, rels, _ = workload
        slots = seed_slots_from_sample(rels["road"], max_slots=8)
        seeded = build_seeded_tree(db.pool, rels["road"], slots)
        assert len(seeded) == len(rels["road"])

    def test_search_equals_scan(self, workload):
        db, rels, _ = workload
        slots = seed_slots_from_sample(rels["road"], max_slots=8)
        seeded = build_seeded_tree(db.pool, rels["road"], slots)
        window = Rect(-90.5, 43.0, -88.0, 45.0)
        expected = sorted(
            oid for oid, t in rels["road"].scan() if t.mbr.intersects(window)
        )
        assert sorted(seeded.search(window)) == expected

    def test_build_requires_slots(self, workload):
        db, rels, _ = workload
        with pytest.raises(ValueError):
            build_seeded_tree(db.pool, rels["road"], [])

    def test_slot_subtree_arity_checked(self):
        with pytest.raises(ValueError):
            SeededTree([Rect(0, 0, 1, 1)], [])

    def test_seeded_join_matches_filter_truth(self, workload):
        db, rels, _ = workload
        slots = seed_slots_from_sample(rels["road"], max_slots=8)
        seeded = build_seeded_tree(db.pool, rels["road"], slots)
        tree_s = bulk_load_rstar(db.pool, rels["hydro"])
        pairs = []
        seeded_tree_join(seeded, tree_s, lambda a, b: pairs.append((a, b)))
        expected = sorted(
            (ro, so)
            for ro, rt in rels["road"].scan()
            for so, st in rels["hydro"].scan()
            if rt.mbr.intersects(st.mbr)
        )
        assert sorted(set(pairs)) == expected


class TestSeededTreeJoinDriver:
    def test_no_index_mode(self, workload):
        db, rels, expected = workload
        res = SeededTreeJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected
        assert "LR95" in res.report.notes["mode"]

    def test_one_index_on_r(self, workload):
        db, rels, expected = workload
        idx_r = bulk_load_rstar(db.pool, rels["road"])
        res = SeededTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_r=idx_r
        )
        assert res.pairs == expected
        assert "LR94" in res.report.notes["mode"]

    def test_one_index_on_s(self, workload):
        db, rels, expected = workload
        idx_s = bulk_load_rstar(db.pool, rels["hydro"])
        res = SeededTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_s=idx_s
        )
        assert res.pairs == expected

    def test_both_indices(self, workload):
        db, rels, expected = workload
        idx_r = bulk_load_rstar(db.pool, rels["road"])
        idx_s = bulk_load_rstar(db.pool, rels["hydro"])
        res = SeededTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects, index_r=idx_r, index_s=idx_s
        )
        assert res.pairs == expected
        assert "BKS93" in res.report.notes["mode"]

    def test_empty_input(self, workload):
        db, rels, _ = workload
        empty = db.create_relation("seeded-empty")
        res = SeededTreeJoin(db.pool).run(empty, rels["hydro"], intersects)
        assert res.pairs == []

    def test_various_slot_budgets(self, workload):
        db, rels, expected = workload
        for slots in (1, 4, 64):
            res = SeededTreeJoin(db.pool, seed_slots=slots).run(
                rels["road"], rels["hydro"], intersects
            )
            assert res.pairs == expected, slots
