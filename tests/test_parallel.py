"""Tests for the §5 parallel PBSM engine."""

import pytest

from repro import intersects
from repro.data import generate_hydrography, generate_roads
from repro.parallel import (
    REPLICATE_MBRS,
    REPLICATE_OBJECTS,
    ParallelJoinResult,
    ParallelPBSM,
    serial_feature_pairs,
)


@pytest.fixture(scope="module")
def workload():
    tuples_r = list(generate_roads(scale=0.002))
    tuples_s = list(generate_hydrography(scale=0.002))
    expected, serial_s = serial_feature_pairs(tuples_r, tuples_s, intersects)
    return tuples_r, tuples_s, expected, serial_s


class TestCorrectness:
    @pytest.mark.parametrize("num_nodes", [1, 3, 8])
    def test_full_replication_matches_serial(self, workload, num_nodes):
        tuples_r, tuples_s, expected, _ = workload
        engine = ParallelPBSM(num_nodes, scheme=REPLICATE_OBJECTS)
        result = engine.run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected

    @pytest.mark.parametrize("num_nodes", [2, 6])
    def test_mbr_replication_matches_serial(self, workload, num_nodes):
        tuples_r, tuples_s, expected, _ = workload
        engine = ParallelPBSM(num_nodes, scheme=REPLICATE_MBRS)
        result = engine.run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected

    def test_empty_inputs(self):
        engine = ParallelPBSM(4)
        assert engine.run([], [], intersects).pairs == []


class TestTradeoffs:
    def test_storage_factor_grows_with_nodes(self, workload):
        tuples_r, tuples_s, _, _ = workload
        small = ParallelPBSM(2).run(tuples_r, tuples_s, intersects)
        large = ParallelPBSM(16).run(tuples_r, tuples_s, intersects)
        # More nodes -> more boundary objects -> more replication.
        assert large.storage_factor_r >= small.storage_factor_r
        assert small.storage_factor_r >= 1.0

    def test_full_replication_has_no_remote_fetches(self, workload):
        tuples_r, tuples_s, _, _ = workload
        result = ParallelPBSM(6, scheme=REPLICATE_OBJECTS).run(
            tuples_r, tuples_s, intersects
        )
        assert result.remote_fetches == 0

    def test_mbr_replication_fetches_remotely(self, workload):
        tuples_r, tuples_s, _, _ = workload
        result = ParallelPBSM(6, scheme=REPLICATE_MBRS).run(
            tuples_r, tuples_s, intersects
        )
        # Some boundary objects must appear in foreign nodes' results.
        assert result.remote_fetches > 0

    def test_work_distributes_across_nodes(self, workload):
        tuples_r, tuples_s, _, _ = workload
        result = ParallelPBSM(8).run(tuples_r, tuples_s, intersects)
        busy = [n for n in result.nodes if n.tuples_r > 0]
        assert len(busy) >= 6  # the tiled declusterer spreads the load
        assert result.speedup > 1.5

    def test_critical_path_below_total_work(self, workload):
        tuples_r, tuples_s, _, _ = workload
        result = ParallelPBSM(4).run(tuples_r, tuples_s, intersects)
        assert result.critical_path_s <= result.total_work_s


class TestValidation:
    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            ParallelPBSM(0)

    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            ParallelPBSM(2, scheme="teleportation")

    def test_result_len(self):
        r = ParallelJoinResult([(1, 2), (3, 4)])
        assert len(r) == 2
        assert r.critical_path_s == 0.0
