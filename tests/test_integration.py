"""System-level integration tests: every algorithm, every workload shape.

These are the tests that pin the headline property of the reproduction —
all four join algorithms (plus the oracle) compute the identical exact
result set on the paper's two query shapes, clustered or not, under memory
pressure or not.
"""

import pytest

from repro import (
    Database,
    IndexedNestedLoopsJoin,
    NaiveNestedLoopsJoin,
    PBSMConfig,
    PBSMJoin,
    RTreeJoin,
    SpatialHashJoin,
    contains,
    intersects,
)
from repro.data import make_sequoia_datasets, make_tiger_datasets
from repro.index import bulk_load_rstar


class TestTigerIntersection:
    @pytest.fixture(scope="class")
    def setup(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.001)
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        ).pairs
        return db, rels, expected

    def test_all_algorithms_agree(self, setup):
        db, rels, expected = setup
        algos = [
            PBSMJoin(db.pool),
            IndexedNestedLoopsJoin(db.pool),
            RTreeJoin(db.pool),
            SpatialHashJoin(db.pool),
        ]
        for algo in algos:
            got = algo.run(rels["road"], rels["hydro"], intersects).pairs
            assert got == expected, type(algo).__name__

    def test_agreement_under_memory_pressure(self, setup):
        db, rels, expected = setup
        cfg = PBSMConfig(memory_bytes=2048)
        got = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert got.pairs == expected

    def test_road_rail_query(self, setup):
        db, rels, _ = setup
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["road"], rels["rail"], intersects
        ).pairs
        for algo in (PBSMJoin(db.pool), IndexedNestedLoopsJoin(db.pool),
                     RTreeJoin(db.pool)):
            assert algo.run(rels["road"], rels["rail"], intersects).pairs == expected


class TestSequoiaContainment:
    @pytest.fixture(scope="class")
    def setup(self):
        db = Database(buffer_mb=2.0)
        rels = make_sequoia_datasets(db, scale=0.003)
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["polygon"], rels["island"], contains
        ).pairs
        return db, rels, expected

    def test_all_algorithms_agree(self, setup):
        db, rels, expected = setup
        for algo in (PBSMJoin(db.pool), IndexedNestedLoopsJoin(db.pool),
                     RTreeJoin(db.pool), SpatialHashJoin(db.pool)):
            got = algo.run(rels["polygon"], rels["island"], contains).pairs
            assert got == expected, type(algo).__name__

    def test_result_shape_is_paper_like(self, setup):
        _db, rels, expected = setup
        # Most islands are contained in exactly one land-use polygon.
        assert len(expected) > 0.5 * len(rels["island"])

    def test_refinement_dominates_pbsm_cost(self, setup):
        db, rels, _ = setup
        res = PBSMJoin(db.pool).run(rels["polygon"], rels["island"], contains)
        refinement = res.report.phase("Refinement")
        assert refinement.total_s > 0.5 * res.report.total_s


class TestClusteredCollection:
    def test_clustered_and_unclustered_results_identical(self):
        db1 = Database(buffer_mb=2.0)
        rels1 = make_tiger_datasets(db1, scale=0.0008)
        db2 = Database(buffer_mb=2.0)
        rels2 = make_tiger_datasets(db2, scale=0.0008, clustered=True)
        res1 = PBSMJoin(db1.pool).run(rels1["road"], rels1["hydro"], intersects)
        res2 = PBSMJoin(db2.pool).run(rels2["road"], rels2["hydro"], intersects)
        # OIDs differ (different physical order) but the joined feature ids
        # must match exactly.
        def feature_pairs(db, rels, pairs):
            r, s = rels["road"], rels["hydro"]
            return sorted(
                (r.fetch(a).feature_id, s.fetch(b).feature_id) for a, b in pairs
            )

        assert feature_pairs(db1, rels1, res1.pairs) == feature_pairs(
            db2, rels2, res2.pairs
        )


class TestPreexistingIndexMatrix:
    """§4.5's six algorithm variants must all produce the same result."""

    @pytest.fixture(scope="class")
    def setup(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.0008)
        idx_r = bulk_load_rstar(db.pool, rels["road"])
        idx_s = bulk_load_rstar(db.pool, rels["hydro"])
        expected = NaiveNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        ).pairs
        return db, rels, idx_r, idx_s, expected

    @pytest.mark.parametrize(
        "use_r, use_s",
        [(False, False), (True, False), (False, True), (True, True)],
    )
    def test_inl_variants(self, setup, use_r, use_s):
        db, rels, idx_r, idx_s, expected = setup
        res = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects,
            index_r=idx_r if use_r else None,
            index_s=idx_s if use_s else None,
        )
        assert res.pairs == expected

    @pytest.mark.parametrize(
        "use_r, use_s",
        [(False, False), (True, False), (False, True), (True, True)],
    )
    def test_rtree_variants(self, setup, use_r, use_s):
        db, rels, idx_r, idx_s, expected = setup
        res = RTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects,
            index_r=idx_r if use_r else None,
            index_s=idx_s if use_s else None,
        )
        assert res.pairs == expected


class TestIOAccountingSanity:
    def test_io_fractions_bounded(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.001)
        db.pool.clear()
        res = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert 0.0 <= res.report.io_fraction <= 1.0
        for phase in res.report.phases:
            assert 0.0 <= phase.io_fraction <= 1.0
            assert phase.page_reads >= 0 and phase.page_writes >= 0

    def test_cold_cache_costs_more_io_than_warm(self):
        db = Database(buffer_mb=8.0)
        rels = make_tiger_datasets(db, scale=0.001)
        db.pool.clear()
        cold = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        warm = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        cold_reads = sum(p.page_reads for p in cold.report.phases)
        warm_reads = sum(p.page_reads for p in warm.report.phases)
        assert cold_reads > warm_reads
