"""JoinServer: cache dispositions, coalescing, admission control, drain
shutdown, fault survival, and the coordinator-kill drill — all against a
real TCP socket."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.checkpoint import inspect_checkpoint_dir
from repro.faults import load_plan
from repro.parallel import parallel_join
from repro.serve import (
    JoinServer,
    QuerySpec,
    ServeClient,
    read_port_file,
    result_digest,
    wait_for_server,
)

SPEC = {"dataset": "road_hydro", "scale": 0.004, "workers": 2}


def start_server(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    server = JoinServer(tmp_path / "cache", tmp_path / "out", **kwargs)
    host, port = server.start()
    return server, host, port


def run_id_of(spec_fields):
    spec = QuerySpec(**spec_fields)
    tuples_r, tuples_s = spec.generate()
    return spec.fingerprint(tuples_r, tuples_s).run_id


def one_shot_digest(spec_fields):
    spec = QuerySpec(**spec_fields)
    tuples_r, tuples_s = spec.generate()
    result = parallel_join(
        tuples_r, tuples_s, spec.predicate_fn,
        backend="process", workers=spec.workers,
    )
    return result_digest(result.pairs)


class TestCachePaths:
    def test_miss_then_hit_byte_identical_to_one_shot(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                miss = client.join(**SPEC)
                hit = client.join(**SPEC)
        finally:
            server.shutdown()
        assert miss["ok"] and miss["source"] == "miss"
        assert hit["ok"] and hit["source"] == "hit"
        assert miss["result_sha256"] == hit["result_sha256"]
        assert miss["result_count"] == hit["result_count"] > 0
        assert miss["result_sha256"] == one_shot_digest(SPEC)
        # The hit skipped the engine entirely, so it must be far cheaper.
        assert hit["latency_s"] < miss["latency_s"]

    def test_warm_entry_resumes_instead_of_restarting(self, tmp_path):
        # Interrupt a one-shot checkpointed run by killing its
        # coordinator; the server then adopts the half-finished cache
        # entry and serves it as a resume, not a cold start.
        from repro.faults import CoordinatorKilledError
        from repro.parallel import ProcessPBSM

        spec = QuerySpec(**SPEC)
        tuples_r, tuples_s = spec.generate()
        engine = ProcessPBSM(
            spec.workers,
            checkpoint_dir=str(tmp_path / "cache"),
            kill_coordinator_after=4,
        )
        with pytest.raises(CoordinatorKilledError):
            engine.run(tuples_r, tuples_s, spec.predicate_fn)

        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                response = client.join(**SPEC)
        finally:
            server.shutdown()
        assert response["ok"] and response["source"] == "warm"
        assert response["result_sha256"] == one_shot_digest(SPEC)

    def test_served_pairs_match_when_requested(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                response = client.join(include_pairs=True, **SPEC)
        finally:
            server.shutdown()
        pairs = [tuple(p) for p in response["pairs"]]
        assert result_digest(pairs) == response["result_sha256"]
        assert len(pairs) == response["result_count"]

    def test_bad_request_is_rejected_not_executed(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                unknown = client.join(dataset="mars_canals")
                typo = client.request({"op": "join", "scal": 0.01})
                wrong = client.join(dataset="road_hydro",
                                    predicate="contains")
        finally:
            server.shutdown()
        for response in (unknown, typo, wrong):
            assert not response["ok"] and response["error"] == "bad_request"
        assert server.stats()["admitted"] == 0


class TestCoalescing:
    def test_simultaneous_identical_queries_coalesce(self, tmp_path):
        """The second identical query must wait on the first's result log
        rather than execute.  Determinism: the test itself holds the
        leadership slot for the fingerprint, so the client query is
        provably *blocked* behind a leader, then released."""
        server, host, port = start_server(tmp_path)
        try:
            # Fill the cache so the released follower replays.
            with ServeClient(host, port) as client:
                first = client.join(**SPEC)
            assert first["source"] == "miss"

            run_id = run_id_of(SPEC)
            gate = threading.Event()
            with server._lock:
                server._leaders[run_id] = gate  # pose as the leader

            response = {}

            def follower():
                with ServeClient(host, port) as client:
                    response.update(client.join(**SPEC))

            thread = threading.Thread(target=follower, daemon=True)
            thread.start()
            thread.join(timeout=1.0)
            assert thread.is_alive(), "query ran without waiting for leader"

            with server._lock:
                server._leaders.pop(run_id)
            gate.set()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        finally:
            server.shutdown()
        assert response["ok"]
        assert response["source"] == "coalesced"
        assert response["result_sha256"] == first["result_sha256"]
        assert server.stats()["coalesced"] == 1

    def test_concurrent_identical_queries_execute_once(self, tmp_path):
        server, host, port = start_server(tmp_path, max_inflight=2)
        results = [None, None]

        def fire(i):
            with ServeClient(host, port) as client:
                results[i] = client.join(**SPEC)

        try:
            threads = [
                threading.Thread(target=fire, args=(i,), daemon=True)
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        finally:
            server.shutdown()
        sources = sorted(r["source"] for r in results)
        assert sources == ["coalesced", "miss"]
        assert results[0]["result_sha256"] == results[1]["result_sha256"]
        assert server.stats()["misses"] == 1


class TestAdmission:
    def test_queue_full_reject_is_immediate_and_explicit(self, tmp_path):
        server, host, port = start_server(
            tmp_path, max_inflight=1, max_queue=0
        )
        try:
            run_id = run_id_of(SPEC)
            gate = threading.Event()
            with server._lock:
                server._leaders[run_id] = gate  # wedge the only slot

            blocked = {}

            def occupant():
                with ServeClient(host, port) as client:
                    blocked.update(client.join(**SPEC))

            thread = threading.Thread(target=occupant, daemon=True)
            thread.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server.stats()["inflight"] == 1:
                    break
                time.sleep(0.01)
            assert server.stats()["inflight"] == 1

            started = time.perf_counter()
            with ServeClient(host, port) as client:
                rejected = client.join(**SPEC)
            reject_latency = time.perf_counter() - started
            assert not rejected["ok"]
            assert rejected["error"] == "queue_full"
            assert reject_latency < 1.0  # rejected, not queued

            with server._lock:
                server._leaders.pop(run_id)
            gate.set()
            thread.join(timeout=60.0)
        finally:
            server.shutdown()
        assert blocked["ok"]
        stats = server.stats()
        assert stats["rejected"] == 1 and stats["admitted"] == 1


class TestShutdown:
    def test_drain_finishes_inflight_and_rejects_new(self, tmp_path):
        server, host, port = start_server(tmp_path)
        run_id = run_id_of(SPEC)
        gate = threading.Event()
        inflight_response = {}

        # Warm the cache, then hold a query in flight behind a posed
        # leader while shutdown drains.
        with ServeClient(host, port) as client:
            first = client.join(**SPEC)
        with server._lock:
            server._leaders[run_id] = gate

        def occupant():
            with ServeClient(host, port) as client:
                inflight_response.update(client.join(**SPEC))

        thread = threading.Thread(target=occupant, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and server.stats()["inflight"] != 1:
            time.sleep(0.01)

        late_client = ServeClient(host, port)  # connected pre-shutdown
        shutter = threading.Thread(target=server.shutdown, daemon=True)
        shutter.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not server.stats()["draining"]:
            time.sleep(0.01)

        late = late_client.join(**SPEC)
        assert not late["ok"] and late["error"] == "shutting_down"
        late_client.close()

        with server._lock:
            server._leaders.pop(run_id)
        gate.set()
        shutter.join(timeout=60.0)
        thread.join(timeout=10.0)
        assert server.stopped.is_set()

        # The drained query completed with the right answer...
        assert inflight_response["ok"]
        assert inflight_response["result_sha256"] == first["result_sha256"]
        # ...and the cache is consistent: every surviving manifest is
        # readable and the completed entry is intact.
        infos = inspect_checkpoint_dir(tmp_path / "cache")
        assert infos and all(not info.error for info in infos)
        assert any(info.complete for info in infos)


class TestFaults:
    def test_served_results_survive_a_fault_plan(self, tmp_path):
        plan = load_plan("worker_faults", seed=3, num_pairs=8)
        server, host, port = start_server(tmp_path, fault_plan=plan)
        try:
            with ServeClient(host, port) as client:
                miss = client.join(**SPEC)
                hit = client.join(**SPEC)
        finally:
            server.shutdown()
        assert miss["ok"] and hit["ok"]
        assert miss["source"] == "miss" and hit["source"] == "hit"
        # Identical to a clean, unserved, fault-free run: the recovery
        # machinery may retry and degrade, never change the answer.
        assert miss["result_sha256"] == one_shot_digest(SPEC)
        assert hit["result_sha256"] == miss["result_sha256"]

    def test_coordinator_kill_drill_resumes_and_stays_identical(self, tmp_path):
        server, host, port = start_server(
            tmp_path, kill_coordinator_after=4, kill_limit=1
        )
        try:
            with ServeClient(host, port) as client:
                drilled = client.join(**SPEC)
                hit = client.join(**SPEC)
        finally:
            server.shutdown()
        assert drilled["ok"]
        assert drilled["drill"] == {"killed_at_ordinal": 4, "resumed": True}
        assert drilled["result_sha256"] == one_shot_digest(SPEC)
        assert hit["ok"] and hit["source"] == "hit"
        assert hit["result_sha256"] == drilled["result_sha256"]
        assert "drill" not in hit


class TestDeadlines:
    def test_stalled_query_rejects_then_retry_recovers(self, tmp_path):
        # A seeded stall pins one pair's worker for longer than the
        # query's deadline: the server answers a *typed* reject, keeps
        # the committed prefix in the cache, and a retry without a
        # deadline waits out the stall and lands byte-identical.
        plan = load_plan("deadline_stall", seed=3, num_pairs=8, hang_s=3.0)
        server, host, port = start_server(tmp_path, fault_plan=plan)
        try:
            with ServeClient(host, port) as client:
                rejected = client.join(deadline_s=1.0, **SPEC)
                retried = client.join(**SPEC)
        finally:
            server.shutdown()
        assert not rejected["ok"]
        assert rejected["error"] == "deadline_exceeded"
        assert rejected["deadline_s"] == 1.0
        assert (
            rejected["completed_pairs"] + rejected["pending_pairs"] == 8
        )
        assert retried["ok"]
        assert retried["source"] in ("warm", "miss")
        assert retried["result_sha256"] == one_shot_digest(SPEC)
        stats = server.stats()
        assert stats["outcomes"]["deadline_exceeded"] == 1
        assert stats["outcomes"]["completed"] == 1
        assert stats["duplicates_dropped"] == 0

    def test_deadline_is_a_cost_knob_not_an_answer_knob(self, tmp_path):
        # deadline_s is excluded from the run fingerprint: a deadlined
        # repeat of an undeadlined query is a plain cache hit.
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                miss = client.join(**SPEC)
                hit = client.join(deadline_s=300.0, **SPEC)
        finally:
            server.shutdown()
        assert miss["ok"] and miss["source"] == "miss"
        assert hit["ok"] and hit["source"] == "hit"
        assert hit["result_sha256"] == miss["result_sha256"]


def retire_pool_generation(server):
    """Simulate a worker crash's pool retirement (one breaker failure)."""
    import multiprocessing

    pool = server.provider.acquire(2, multiprocessing.get_context())
    server.provider.discard(pool)


class TestBreaker:
    OTHER = {"dataset": "road_hydro", "scale": 0.003, "workers": 2}

    def test_open_breaker_sheds_to_byte_identical_degraded(self, tmp_path):
        server, host, port = start_server(
            tmp_path, breaker_threshold=1, breaker_cooldown_s=60.0
        )
        try:
            with ServeClient(host, port) as client:
                baseline = client.join(**SPEC)
                retire_pool_generation(server)
                degraded = client.join(**self.OTHER)
                # Cache hits never consult the breaker: the cached spec
                # still serves from the log while the pool is shunned.
                hit = client.join(**SPEC)
            stats = server.stats()
        finally:
            server.shutdown()
        assert baseline["ok"] and baseline["source"] == "miss"
        assert degraded["ok"] and degraded["source"] == "degraded"
        assert degraded["result_sha256"] == one_shot_digest(self.OTHER)
        assert hit["ok"] and hit["source"] == "hit"
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["trips"] == 1
        assert stats["outcomes"]["degraded"] == 1
        assert stats["duplicates_dropped"] == 0
        # A degraded run must not shadow the real cache entry: the shed
        # path never writes a run directory for its fingerprint.
        assert not (tmp_path / "cache" / run_id_of(self.OTHER)).exists()

    def test_half_open_probe_closes_the_breaker(self, tmp_path):
        server, host, port = start_server(
            tmp_path, breaker_threshold=1, breaker_cooldown_s=0.3
        )
        try:
            retire_pool_generation(server)
            assert server.provider.breaker_stats()["state"] == "open"
            time.sleep(0.35)
            with ServeClient(host, port) as client:
                probe = client.join(**SPEC)
            stats = server.stats()
        finally:
            server.shutdown()
        # The probe ran pool-backed and its success closed the breaker.
        assert probe["ok"] and probe["source"] == "miss"
        assert probe["result_sha256"] == one_shot_digest(SPEC)
        assert stats["breaker"]["state"] == "closed"
        assert stats["breaker"]["trips"] == 1
        assert stats["outcomes"]["degraded"] == 0


class TestScrubberIntegration:
    def test_corrupted_entry_is_quarantined_and_requeried_clean(
        self, tmp_path
    ):
        server, host, port = start_server(tmp_path, scrub_interval_s=0.1)
        try:
            with ServeClient(host, port) as client:
                first = client.join(**SPEC)
                assert first["ok"] and first["source"] == "miss"
                log = (
                    tmp_path / "cache" / first["run_id"] / "results.log"
                )
                data = bytearray(log.read_bytes())
                data[10] ^= 0xFF
                log.write_bytes(bytes(data))

                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if server.stats()["scrub"]["quarantined"] >= 1:
                        break
                    time.sleep(0.05)
                assert server.stats()["scrub"]["quarantined"] == 1
                assert (
                    tmp_path / "cache" / "quarantine" / first["run_id"]
                ).is_dir()

                # The fingerprint is a cold miss now; the re-run answer
                # is byte-identical to the pre-corruption one.
                again = client.join(**SPEC)
            stats = server.stats()
        finally:
            server.shutdown()
        assert again["ok"] and again["source"] == "miss"
        assert again["result_sha256"] == first["result_sha256"]
        assert stats["duplicates_dropped"] == 0
        assert stats["scrub"]["errors"] == 0


class TestStatsOp:
    def test_stats_exposes_resilience_state(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                stats = client.stats()["stats"]
        finally:
            server.shutdown()
        assert stats["breaker"]["state"] == "closed"
        assert set(stats["outcomes"]) == {
            "completed", "deadline_exceeded", "degraded", "rejected",
            "failed", "storage_overload",
        }
        assert stats["scrub"]["running"] is False  # no --scrub-interval
        assert stats["disk"] is None  # no --disk-budget
        assert stats["duplicates_dropped"] == 0


class TestStoragePressure:
    def test_over_footprint_query_gets_typed_reject(self, tmp_path):
        # A budget far below the workload's estimated spill footprint:
        # admission must refuse with the typed storage_overload reject
        # before a single byte hits disk — never a crash or a partial
        # answer.
        server, host, port = start_server(tmp_path, disk_budget_bytes=10_000)
        try:
            with ServeClient(host, port) as client:
                response = client.join(**SPEC)
                stats = client.stats()["stats"]
        finally:
            server.shutdown()
        assert not response.get("ok"), response
        assert response["error"] == "storage_overload"
        assert response["estimated_bytes"] > response["available_bytes"]
        assert response["available_bytes"] <= 10_000
        assert stats["outcomes"]["storage_overload"] == 1
        assert stats["disk"]["used_bytes"] == 0
        assert stats["disk"]["max_bytes"] == 10_000

    def test_generous_budget_serves_identically_and_meters(self, tmp_path):
        server, host, port = start_server(
            tmp_path, disk_budget_bytes=64 * 1024 * 1024
        )
        try:
            with ServeClient(host, port) as client:
                miss = client.join(**SPEC)
                stats = client.stats()["stats"]
        finally:
            server.shutdown()
        assert miss["ok"] and miss["source"] == "miss"
        assert miss["result_sha256"] == one_shot_digest(SPEC)
        # The engine's spill + checkpoint bytes stay charged: they are
        # the cache entry the budget now governs.
        assert stats["disk"]["used_bytes"] > 0
        assert stats["outcomes"]["storage_overload"] == 0
        assert stats["duplicates_dropped"] == 0


class TestTelemetryOps:
    def test_telemetry_op_reports_series_and_slow_log(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                miss = client.join(**SPEC)
                hit = client.join(**SPEC)
                server.sampler.sample()  # deterministic manual tick
                response = client.telemetry()
        finally:
            server.shutdown()
        assert miss["ok"] and hit["ok"]
        assert response["ok"] and response["op"] == "telemetry"
        telemetry = response["telemetry"]
        assert telemetry["sampling"]["ticks"] == 1
        series = telemetry["series"]
        assert series["completed"]["last"] == 2.0
        assert series["cache_hits"]["last"] == 1.0
        assert series["breaker_state"]["last"] == 0.0  # closed
        # The slow log carries the full phase breakdown per query.
        entries = telemetry["slow_log"]
        assert len(entries) == 2
        assert {e["source"] for e in entries} == {"miss", "hit"}
        for entry in entries:
            assert set(entry["phases"]) == {
                "queue_s", "materialise_s", "execute_s",
            }
            assert entry["latency_s"] >= entry["phases"]["queue_s"]
        # The miss did engine work; it must rank above the hit.
        assert entries[0]["source"] == "miss"

    def test_outcome_block_shared_by_stats_and_telemetry(self, tmp_path):
        from repro.serve import outcome_block

        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                client.join(**SPEC)
                stats_response = client.stats()
                telemetry = client.telemetry()["telemetry"]
        finally:
            server.shutdown()
        # One formatter, three consumers: the stats op summary, the
        # telemetry op outcomes, and (via import) the benchmark notes.
        block = outcome_block(stats_response["stats"])
        assert stats_response["summary"] == block
        assert telemetry["outcomes"] == block
        assert block["outcomes"]["completed"] == 1
        assert block["breaker_state"] == "closed"

    def test_metrics_op_exposition_parses_and_matches_stats(self, tmp_path):
        from repro.obs import parse_exposition

        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                client.join(**SPEC)
                client.join(**SPEC)
                first = client.metrics()
                second = client.metrics()
                stats = client.stats()["stats"]
        finally:
            server.shutdown()
        assert first["ok"] and first["content_type"].startswith("text/plain")
        # Deterministic: an idle server scrapes byte-identical text.
        assert first["exposition"] == second["exposition"]
        parsed = parse_exposition(first["exposition"])
        assert parsed["repro_serve_completed"]["value"] == (
            stats["outcomes"]["completed"]
        )
        assert parsed["repro_serve_cache_hits"]["value"] == stats["hits"]
        assert parsed["repro_serve_cache_misses"]["value"] == stats["misses"]
        latency = parsed["repro_serve_latency_s"]
        assert latency["type"] == "histogram"
        assert latency["count"] == 2.0

    def test_window_s_must_be_numeric(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with ServeClient(host, port) as client:
                bad = client.request({"op": "telemetry", "window_s": "soon"})
        finally:
            server.shutdown()
        assert not bad["ok"] and bad["error"] == "bad_request"

    def test_interval_sampler_ticks_and_journals(self, tmp_path):
        server, host, port = start_server(
            tmp_path, telemetry_interval_s=0.05
        )
        try:
            with ServeClient(host, port) as client:
                client.join(**SPEC)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if server.sampler.ticks >= 2:
                        break
                    time.sleep(0.02)
                assert server.sampler.ticks >= 2
        finally:
            server.shutdown()
        journal = (tmp_path / "out" / "serve.jsonl").read_text().splitlines()
        samples = [
            record for record in map(json.loads, journal)
            if record["type"] == "sample"
        ]
        assert samples and all(r["kind"] == "telemetry" for r in samples)
        assert {"queued", "inflight", "completed", "breaker_state"} <= set(
            samples[0]
        )


class TestSigterm:
    def test_sigterm_drains_and_exits_clean(self, tmp_path):
        port_file = tmp_path / "port.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(tmp_path / "out"),
                "--port-file", str(port_file),
                "--workers", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = read_port_file(port_file, timeout_s=30.0)
            wait_for_server("127.0.0.1", port, timeout_s=30.0)
            with ServeClient("127.0.0.1", port) as client:
                response = client.join(**SPEC)
            assert response["ok"]
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained" in out
        # The cache survived shutdown consistent and replayable.
        infos = inspect_checkpoint_dir(tmp_path / "cache")
        assert len(infos) == 1 and infos[0].complete and not infos[0].error
        # The serve journal is valid JSONL with the typed serve events.
        journal = (tmp_path / "out" / "serve.jsonl").read_text().splitlines()
        kinds = {json.loads(line)["type"] for line in journal}
        assert {"query_received", "query_done"} <= kinds
