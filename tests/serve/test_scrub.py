"""CacheScrubber: CRC walks, warm-entry repair, quarantine, liveness."""

import time

import pytest

from repro.checkpoint import (
    STATE_MERGING,
    CheckpointStore,
    JoinManifest,
    RunFingerprint,
    inspect_checkpoint_dir,
    replay_result_log,
)
from repro.obs import MetricsRegistry
from repro.parallel import PairTaskResult
from repro.serve import (
    LOOKUP_MISS,
    LOOKUP_WARM,
    QUARANTINE_DIRNAME,
    ArtifactCache,
    CacheScrubber,
)
from repro.serve.scrub import intact_prefix

SEAL_R = {"type": "spills_sealed", "side": "r", "files": [], "placed": 0}
SEAL_S = {"type": "spills_sealed", "side": "s", "files": [], "placed": 0}


def make_fingerprint(salt=0):
    return RunFingerprint(
        count_r=10 + salt, count_s=20, crc_r=111, crc_s=222,
        predicate="intersects", num_partitions=4, config={"num_tiles": 64},
    )


def make_result(index, pairs):
    return PairTaskResult(
        index=index, worker_pid=1234, pairs=[tuple(p) for p in pairs],
        candidates=3, count_r=2, count_s=2, wall_s=0.01,
    )


def seed_complete_run(root, salt=0, result_count=3):
    store = CheckpointStore(root, make_fingerprint(salt))
    with store:
        store.begin(JoinManifest(store.fingerprint))
        store.append_event(SEAL_R)
        store.append_event(SEAL_S)
        store.append_event(
            {"type": "phase", "state": STATE_MERGING, "pairs_total": 2}
        )
        store.append_result(make_result(0, [(1, 2), (3, 4)]))
        store.append_result(make_result(1, [(5, 6)]))
        store.append_event({"type": "complete", "result_count": result_count})
    return store


def seed_warm_run(root, salt=0):
    """A mid-merge run: two pairs committed, no ``complete`` event."""
    store = CheckpointStore(root, make_fingerprint(salt))
    with store:
        store.begin(JoinManifest(store.fingerprint))
        store.append_event(SEAL_R)
        store.append_event(SEAL_S)
        store.append_event(
            {"type": "phase", "state": STATE_MERGING, "pairs_total": 4}
        )
        store.append_result(make_result(0, [(1, 2)]))
        store.append_result(make_result(1, [(3, 4)]))
    return store


def flip_byte(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def scrubber_for(tmp_path, **kwargs):
    metrics = kwargs.setdefault("metrics", MetricsRegistry())
    cache = ArtifactCache(tmp_path, metrics=metrics)
    return cache, CacheScrubber(cache, **kwargs)


class TestIntactPrefix:
    def test_missing_file_is_an_empty_intact_log(self, tmp_path):
        assert intact_prefix(tmp_path / "absent.log") == (0, 0)

    def test_healthy_log_is_intact_to_the_byte(self, tmp_path):
        store = seed_complete_run(tmp_path)
        frames, nbytes = intact_prefix(store.results_path)
        assert frames == 2
        assert nbytes == store.results_path.stat().st_size

    def test_damage_truncates_the_prefix_at_the_bad_frame(self, tmp_path):
        store = seed_complete_run(tmp_path)
        # Flip a payload byte of the *second* frame: the CRC walk keeps
        # frame 0 and stops at the damage.
        _, full = intact_prefix(store.results_path)
        first_frame_end = intact_prefix_first_frame_bytes(store)
        flip_byte(store.results_path, first_frame_end + 10)
        frames, nbytes = intact_prefix(store.results_path)
        assert frames == 1
        assert nbytes == first_frame_end < full

    def test_torn_tail_is_not_part_of_the_prefix(self, tmp_path):
        store = seed_complete_run(tmp_path)
        _, full = intact_prefix(store.results_path)
        with open(store.results_path, "ab") as fh:
            fh.write(b"\x03\x00")  # half a frame header
        frames, nbytes = intact_prefix(store.results_path)
        assert frames == 2
        assert nbytes == full


def intact_prefix_first_frame_bytes(store):
    """Byte length of frame 0 (header + payload), via a one-frame log."""
    import struct

    data = store.results_path.read_bytes()
    length, _crc = struct.unpack("<II", data[:8])
    return 8 + length


class TestScrubOnce:
    def test_clean_cache_scrubs_clean(self, tmp_path):
        seed_complete_run(tmp_path, salt=0)
        seed_warm_run(tmp_path, salt=1)
        cache, scrubber = scrubber_for(tmp_path)
        tallies = scrubber.scrub_once()
        assert tallies == {"scanned": 2, "repaired": 0, "quarantined": 0,
                           "evicted": 0}
        assert scrubber.stats()["passes"] == 1

    def test_damaged_complete_entry_is_quarantined(self, tmp_path):
        store = seed_complete_run(tmp_path)
        run_id = store.fingerprint.run_id
        flip_byte(store.results_path, 10)
        cache, scrubber = scrubber_for(tmp_path)
        tallies = scrubber.scrub_once()
        assert tallies["quarantined"] == 1
        # The entry moved under quarantine/ — a cold miss for queries,
        # invisible to the checkpoint walker, bytes kept for post-mortem.
        assert not store.run_dir.exists()
        assert (tmp_path / QUARANTINE_DIRNAME / run_id).is_dir()
        assert cache.lookup(make_fingerprint()) == LOOKUP_MISS
        assert inspect_checkpoint_dir(tmp_path) == []

    def test_lying_result_count_is_quarantined(self, tmp_path):
        # Every frame is CRC-clean but the manifest promises 5 results
        # and the merge replays 3: the entry is lying, not repairable.
        store = seed_complete_run(tmp_path, result_count=5)
        cache, scrubber = scrubber_for(tmp_path)
        assert scrubber.scrub_once()["quarantined"] == 1
        assert (tmp_path / QUARANTINE_DIRNAME / store.fingerprint.run_id).is_dir()

    def test_corrupt_manifest_is_quarantined(self, tmp_path):
        store = seed_complete_run(tmp_path)
        store.manifest_path.write_bytes(b"garbage")
        cache, scrubber = scrubber_for(tmp_path)
        assert scrubber.scrub_once()["quarantined"] == 1

    def test_damaged_warm_entry_is_repaired_not_quarantined(self, tmp_path):
        # A warm entry's damaged tail is trimmed to the intact prefix:
        # the committed pair survives, the damaged one returns to
        # uncommitted, and the entry stays warm (resumable).
        store = seed_warm_run(tmp_path)
        first_frame = intact_prefix_first_frame_bytes(store)
        flip_byte(store.results_path, first_frame + 10)
        cache, scrubber = scrubber_for(tmp_path)
        tallies = scrubber.scrub_once()
        assert tallies == {"scanned": 1, "repaired": 1, "quarantined": 0,
                           "evicted": 0}
        assert store.results_path.stat().st_size == first_frame
        committed, torn = replay_result_log(store.results_path)
        assert sorted(committed) == [0] and not torn
        assert cache.lookup(make_fingerprint()) == LOOKUP_WARM
        # The next pass finds nothing left to do.
        assert scrubber.scrub_once() == {
            "scanned": 1, "repaired": 0, "quarantined": 0, "evicted": 0,
        }

    def test_pinned_entries_are_never_touched(self, tmp_path):
        store = seed_complete_run(tmp_path)
        run_id = store.fingerprint.run_id
        flip_byte(store.results_path, 10)
        cache, scrubber = scrubber_for(tmp_path)
        with cache.pinned(run_id):
            tallies = scrubber.scrub_once()
            assert tallies == {"scanned": 0, "repaired": 0,
                               "quarantined": 0, "evicted": 0}
            assert store.run_dir.exists()
        # Unpinned, the damage is actionable again.
        assert scrubber.scrub_once()["quarantined"] == 1

    def test_quarantine_refuses_missing_and_pinned_runs(self, tmp_path):
        store = seed_complete_run(tmp_path)
        cache = ArtifactCache(tmp_path)
        assert not cache.quarantine("run-nope", "test")
        with cache.pinned(store.fingerprint.run_id):
            assert not cache.quarantine(store.fingerprint.run_id, "test")
        assert cache.quarantine(store.fingerprint.run_id, "test")

    def test_metrics_and_validation(self, tmp_path):
        metrics = MetricsRegistry()
        store = seed_complete_run(tmp_path)
        flip_byte(store.results_path, 10)
        cache, scrubber = scrubber_for(tmp_path, metrics=metrics)
        scrubber.scrub_once()
        snapshot = metrics.snapshot()
        assert snapshot["serve.scrub.passes"]["value"] == 1
        assert snapshot["serve.scrub.quarantined"]["value"] == 1
        assert snapshot["serve.cache.quarantined"]["value"] == 1
        with pytest.raises(ValueError):
            CacheScrubber(cache, interval_s=0)


class TestBackgroundThread:
    def test_loop_scrubs_and_survives_stop_start(self, tmp_path):
        store = seed_complete_run(tmp_path)
        flip_byte(store.results_path, 10)
        cache, scrubber = scrubber_for(tmp_path, interval_s=0.05)
        scrubber.start()
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if scrubber.stats()["quarantined"] >= 1:
                    break
                time.sleep(0.02)
        finally:
            scrubber.stop()
        stats = scrubber.stats()
        assert stats["quarantined"] == 1
        assert stats["errors"] == 0
        assert not stats["running"]
        scrubber.start()  # restartable after a stop
        scrubber.stop()


class TestBudgetReEnforcement:
    """The scrubber's background pass is the only actor guaranteed to
    visit an idle cache, so it also re-enforces the byte budget."""

    def test_scrub_pass_evicts_over_budget_entries(self, tmp_path):
        seed_complete_run(tmp_path, salt=0)
        seed_complete_run(tmp_path, salt=1)
        metrics = MetricsRegistry()
        cache = ArtifactCache(tmp_path, max_bytes=0, metrics=metrics)
        scrubber = CacheScrubber(cache, metrics=metrics)
        tallies = scrubber.scrub_once()
        assert tallies["scanned"] == 2
        assert tallies["quarantined"] == 0
        assert tallies["evicted"] == 2
        assert scrubber.stats()["evicted"] == 2
        assert cache.lookup(make_fingerprint(0)) == LOOKUP_MISS
        assert cache.lookup(make_fingerprint(1)) == LOOKUP_MISS
        # The next pass finds an empty cache and nothing to evict.
        assert scrubber.scrub_once() == {
            "scanned": 0, "repaired": 0, "quarantined": 0, "evicted": 0,
        }

    def test_unconstrained_cache_never_evicts(self, tmp_path):
        seed_complete_run(tmp_path, salt=0)
        cache, scrubber = scrubber_for(tmp_path)
        assert scrubber.scrub_once()["evicted"] == 0
        assert cache.lookup(make_fingerprint(0)) != LOOKUP_MISS
