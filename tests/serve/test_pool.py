"""SharedPoolProvider: pool lifecycle races and the circuit breaker."""

import multiprocessing
import threading
import time

import pytest

from repro.serve import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SharedPoolProvider,
)


def ctx():
    return multiprocessing.get_context()


class _Recorder:
    """Journal stub capturing ``emit`` calls (the null journal discards)."""

    def __init__(self):
        self.events = []

    def emit(self, event_type, **fields):
        self.events.append((event_type, fields))


def trip(provider, failures=1):
    """Retire ``failures`` pool generations back to back."""
    for _ in range(failures):
        provider.discard(provider.acquire(2, ctx()))


class TestValidation:
    def test_knobs_validated(self):
        with pytest.raises(ValueError):
            SharedPoolProvider(0)
        with pytest.raises(ValueError):
            SharedPoolProvider(2, breaker_threshold=0)
        with pytest.raises(ValueError):
            SharedPoolProvider(2, breaker_window_s=0)
        with pytest.raises(ValueError):
            SharedPoolProvider(2, breaker_cooldown_s=-1.0)


class TestLifecycle:
    def test_acquire_hands_out_one_resident_pool(self):
        provider = SharedPoolProvider(2)
        try:
            a = provider.acquire(2, ctx())
            b = provider.acquire(8, ctx())  # per-run sizing is ignored
            assert a is b
            assert provider.generation == 1
            provider.release(a)  # no-op: the pool outlives the run
            assert provider.acquire(2, ctx()) is a
        finally:
            provider.close()

    def test_late_discard_of_a_retired_pool_is_a_noop(self):
        provider = SharedPoolProvider(2)
        try:
            dead = provider.acquire(2, ctx())
            provider.discard(dead)
            fresh = provider.acquire(2, ctx())
            assert fresh is not dead
            assert provider.generation == 2
            # Co-tenants reporting the same dead pool must not retire the
            # replacement — or charge the breaker twice.
            provider.discard(dead)
            assert provider.acquire(2, ctx()) is fresh
            assert provider.breaker_stats()["failures_in_window"] == 1
        finally:
            provider.close()

    def test_close_racing_acquire_never_leaks_a_pool(self):
        # Acquirers hammer the provider while close() lands: every
        # acquire either gets the one resident pool (which close then
        # retires) or a clean RuntimeError — never a fresh executor that
        # would outlive the server.
        provider = SharedPoolProvider(2)
        pools, refusals = [], []
        barrier = threading.Barrier(3)

        def acquirer():
            barrier.wait()
            for _ in range(200):
                try:
                    pools.append(provider.acquire(2, ctx()))
                except RuntimeError:
                    refusals.append(1)
                    return

        def closer():
            barrier.wait()
            provider.close()

        threads = [
            threading.Thread(target=acquirer),
            threading.Thread(target=acquirer),
            threading.Thread(target=closer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        # At most one pool instance was ever handed out, and the closed
        # provider refuses forever.
        assert len({id(p) for p in pools}) <= 1
        with pytest.raises(RuntimeError):
            provider.acquire(2, ctx())
        # Close retired whatever existed: the survivors cannot accept
        # work (ProcessPoolExecutor raises once shut down).
        for pool in pools[:1]:
            with pytest.raises(RuntimeError):
                pool.submit(int)

    def test_initializers_are_refused(self):
        provider = SharedPoolProvider(2)
        try:
            with pytest.raises(ValueError, match="initializer"):
                provider.acquire(2, ctx(), initializer=int)
        finally:
            provider.close()


class TestBreaker:
    def test_opens_at_threshold_within_window(self):
        journal = _Recorder()
        provider = SharedPoolProvider(
            2, breaker_threshold=2, breaker_window_s=30.0,
            breaker_cooldown_s=60.0, journal=journal,
        )
        try:
            assert provider.admit()  # closed: everyone flows
            trip(provider)
            stats = provider.breaker_stats()
            assert stats["state"] == BREAKER_CLOSED
            assert stats["failures_in_window"] == 1
            assert provider.admit()
            trip(provider)
            stats = provider.breaker_stats()
            assert stats["state"] == BREAKER_OPEN
            assert stats["trips"] == 1
            assert not provider.admit()  # shed until the cooldown
            assert [e[1]["to_state"] for e in journal.events] == ["open"]
        finally:
            provider.close()

    def test_half_open_probe_success_closes(self):
        provider = SharedPoolProvider(
            2, breaker_threshold=1, breaker_window_s=30.0,
            breaker_cooldown_s=0.2,
        )
        try:
            trip(provider)
            assert not provider.admit()
            time.sleep(0.25)
            assert provider.admit()  # the probe
            assert provider.breaker_stats()["state"] == BREAKER_HALF_OPEN
            assert not provider.admit()  # one probe per cooldown window
            provider.report_success()
            stats = provider.breaker_stats()
            assert stats["state"] == BREAKER_CLOSED
            assert stats["failures_in_window"] == 0
            assert provider.admit()
        finally:
            provider.close()

    def test_half_open_probe_failure_reopens(self):
        provider = SharedPoolProvider(
            2, breaker_threshold=1, breaker_window_s=30.0,
            breaker_cooldown_s=0.2,
        )
        try:
            trip(provider)
            time.sleep(0.25)
            assert provider.admit()
            assert provider.breaker_stats()["state"] == BREAKER_HALF_OPEN
            trip(provider)  # the probe's pool died
            stats = provider.breaker_stats()
            assert stats["state"] == BREAKER_OPEN
            assert stats["trips"] == 1  # reopen is not a fresh trip
            assert not provider.admit()  # fresh cooldown started
        finally:
            provider.close()

    def test_vanished_probe_cannot_wedge_the_breaker(self):
        # A probe that never reports (client gone, crash before either
        # report path) must not leave the breaker half-open forever: the
        # next cooldown window simply claims a fresh probe.
        provider = SharedPoolProvider(
            2, breaker_threshold=1, breaker_window_s=30.0,
            breaker_cooldown_s=0.2,
        )
        try:
            trip(provider)
            time.sleep(0.25)
            assert provider.admit()  # probe #1 — vanishes, never reports
            assert not provider.admit()
            time.sleep(0.25)
            assert provider.admit()  # probe #2
            provider.report_success()
            assert provider.breaker_stats()["state"] == BREAKER_CLOSED
        finally:
            provider.close()

    def test_failures_age_out_of_the_window(self):
        provider = SharedPoolProvider(
            2, breaker_threshold=3, breaker_window_s=0.2,
            breaker_cooldown_s=60.0,
        )
        try:
            trip(provider, failures=2)
            assert provider.breaker_stats()["failures_in_window"] == 2
            time.sleep(0.25)
            assert provider.breaker_stats()["failures_in_window"] == 0
            # Old failures cannot conspire with new ones across windows.
            trip(provider, failures=2)
            assert provider.breaker_stats()["state"] == BREAKER_CLOSED
        finally:
            provider.close()

    def test_report_success_outside_half_open_is_a_noop(self):
        provider = SharedPoolProvider(2, breaker_threshold=2)
        try:
            trip(provider)
            provider.report_success()  # closed: nothing to close
            assert provider.breaker_stats()["failures_in_window"] == 1
        finally:
            provider.close()
