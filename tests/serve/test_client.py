"""ServeClient transport resilience: bounded retries, timeout discipline."""

import json
import socket
import threading

import pytest

from repro.serve import ServeClient


class FlakyServer(threading.Thread):
    """A line server that drops the first ``drops`` requests mid-read.

    Each dropped request sees its connection closed without a response —
    the client observes a mid-request ``ConnectionResetError``.  Requests
    past the budget are answered ``{"ok": true, "echo": ...}``.  With
    ``mute=True`` it accepts and reads but never responds (a wedged,
    living server).
    """

    def __init__(self, drops=0, mute=False):
        super().__init__(daemon=True)
        self.drops = drops
        self.mute = mute
        self.connections = 0
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self._stop = threading.Event()

    def run(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                rfile = conn.makefile("r", encoding="utf-8", newline="\n")
                for line in rfile:
                    if self.mute:
                        continue  # read forever, answer never
                    if self.drops > 0:
                        self.drops -= 1
                        break  # close without responding
                    response = {"ok": True, "echo": json.loads(line)}
                    conn.sendall(
                        (json.dumps(response) + "\n").encode("utf-8")
                    )
                rfile.close()  # makefile holds the fd: close it too,
                try:           # or the peer never sees our EOF
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def stop(self):
        self._stop.set()
        try:
            self.listener.close()
        except OSError:
            pass


@pytest.fixture
def flaky():
    servers = []

    def factory(**kwargs):
        server = FlakyServer(**kwargs)
        server.start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


class TestRetries:
    def test_mid_request_reset_is_retried_transparently(self, flaky):
        server = flaky(drops=2)
        with ServeClient(
            "127.0.0.1", server.port, retries=2, retry_backoff_s=0.01
        ) as client:
            response = client.request({"op": "ping"})
        assert response["ok"]
        # Two drops burned two reconnects: three connections total.
        assert server.connections == 3

    def test_retry_budget_is_bounded(self, flaky):
        server = flaky(drops=5)
        with ServeClient(
            "127.0.0.1", server.port, retries=1, retry_backoff_s=0.01
        ) as client:
            with pytest.raises(ConnectionError):
                client.request({"op": "ping"})
        assert server.connections == 2  # initial + exactly one retry

    def test_zero_retries_surfaces_the_first_reset(self, flaky):
        server = flaky(drops=1)
        with ServeClient("127.0.0.1", server.port, retries=0) as client:
            with pytest.raises(ConnectionResetError):
                client.request({"op": "ping"})

    def test_refused_reconnect_burns_attempts_not_forever(self, flaky):
        # The server dies completely after accepting the client: the
        # retry loop's reconnects hit ECONNREFUSED, which must consume
        # the bounded budget and surface, not spin.
        server = flaky(drops=0)
        client = ServeClient(
            "127.0.0.1", server.port, retries=2, retry_backoff_s=0.01
        )
        server.stop()
        with client:
            with pytest.raises(ConnectionError):
                client.request({"op": "ping"})

    def test_timeout_is_never_retried(self, flaky):
        # Silence is not evidence the server is gone: a read timeout
        # propagates immediately so the deadline machinery owns it.
        server = flaky(mute=True)
        with ServeClient(
            "127.0.0.1", server.port, timeout=0.2, retries=3
        ) as client:
            with pytest.raises(socket.timeout):
                client.request({"op": "ping"})
        assert server.connections == 1  # no reconnect happened

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, retries=-1)
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, retry_backoff_s=-0.5)
