"""ArtifactCache: lookup classification, result-log replay, pinning, and
the one shared LRU-by-bytes eviction policy (cache + ``checkpoints gc``)."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    STATE_MERGING,
    CheckpointInfo,
    CheckpointStore,
    JoinManifest,
    RunFingerprint,
    gc_checkpoint_dir,
    select_lru_victims,
)
from repro.parallel import PairTaskResult
from repro.serve import LOOKUP_HIT, LOOKUP_MISS, LOOKUP_WARM, ArtifactCache
from repro.__main__ import main

SEAL_R = {"type": "spills_sealed", "side": "r", "files": [], "placed": 0}
SEAL_S = {"type": "spills_sealed", "side": "s", "files": [], "placed": 0}


def make_fingerprint(salt=0):
    return RunFingerprint(
        count_r=10 + salt, count_s=20, crc_r=111, crc_s=222,
        predicate="intersects", num_partitions=4, config={"num_tiles": 64},
    )


def make_result(index, pairs):
    return PairTaskResult(
        index=index, worker_pid=1234, pairs=[tuple(p) for p in pairs],
        candidates=3, count_r=2, count_s=2, wall_s=0.01,
    )


def seed_complete_run(root, salt=0, pad_bytes=0):
    """A finished run whose disjoint pair logs merge to {(1,2),(3,4),(5,6)}."""
    store = CheckpointStore(root, make_fingerprint(salt))
    with store:
        store.begin(JoinManifest(store.fingerprint))
        store.append_event(SEAL_R)
        store.append_event(SEAL_S)
        store.append_event(
            {"type": "phase", "state": STATE_MERGING, "pairs_total": 2}
        )
        store.append_result(make_result(0, [(1, 2), (3, 4)]))
        store.append_result(make_result(1, [(5, 6)]))
        store.append_event({"type": "complete", "result_count": 3})
    if pad_bytes:
        (store.run_dir / "pad.bin").write_bytes(b"x" * pad_bytes)
    return store


def seed_partial_run(root, salt=0):
    store = CheckpointStore(root, make_fingerprint(salt))
    with store:
        store.begin(JoinManifest(store.fingerprint))
        store.append_event(SEAL_R)
        store.append_event(SEAL_S)
    return store


class TestLookup:
    def test_absent_run_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.lookup(make_fingerprint()) == LOOKUP_MISS

    def test_complete_run_is_a_hit(self, tmp_path):
        seed_complete_run(tmp_path)
        cache = ArtifactCache(tmp_path)
        assert cache.lookup(make_fingerprint()) == LOOKUP_HIT

    def test_partial_run_is_warm(self, tmp_path):
        seed_partial_run(tmp_path)
        cache = ArtifactCache(tmp_path)
        assert cache.lookup(make_fingerprint()) == LOOKUP_WARM

    def test_corrupt_manifest_is_a_miss_not_an_error(self, tmp_path):
        store = seed_complete_run(tmp_path)
        store.manifest_path.write_bytes(b"garbage")
        cache = ArtifactCache(tmp_path)
        assert cache.lookup(make_fingerprint()) == LOOKUP_MISS

    def test_foreign_fingerprint_in_the_dir_is_a_miss(self, tmp_path):
        # A run directory whose manifest belongs to a different join must
        # never be served as this join's answer.
        ours, theirs = make_fingerprint(0), make_fingerprint(1)
        store = seed_complete_run(tmp_path, salt=1)
        (tmp_path / ours.run_id).mkdir()
        (tmp_path / ours.run_id / "manifest.bin").write_bytes(
            store.manifest_path.read_bytes()
        )
        cache = ArtifactCache(tmp_path)
        assert cache.lookup(ours) == LOOKUP_MISS
        assert cache.lookup(theirs) == LOOKUP_HIT


class TestReplay:
    def test_replays_the_committed_merge_sorted(self, tmp_path):
        seed_complete_run(tmp_path)
        cache = ArtifactCache(tmp_path)
        assert cache.replay(make_fingerprint()) == [(1, 2), (3, 4), (5, 6)]

    def test_overlapping_pair_logs_refuse_to_serve(self, tmp_path):
        # Two-layer partitioning makes per-pair logs disjoint by
        # construction; a duplicate across logs means the artifacts were
        # not written by the current layout and must not be served.
        store = CheckpointStore(tmp_path, make_fingerprint(7))
        with store:
            store.begin(JoinManifest(store.fingerprint))
            store.append_event(SEAL_R)
            store.append_event(SEAL_S)
            store.append_event(
                {"type": "phase", "state": STATE_MERGING, "pairs_total": 2}
            )
            store.append_result(make_result(0, [(1, 2), (3, 4)]))
            store.append_result(make_result(1, [(3, 4), (5, 6)]))
            store.append_event({"type": "complete", "result_count": 3})
        cache = ArtifactCache(tmp_path)
        assert cache.replay(make_fingerprint(7)) is None

    def test_count_mismatch_refuses_to_serve(self, tmp_path):
        # The manifest promises 3 results; hand-truncate the log so the
        # union disagrees — the entry is lying and must not be served.
        store = seed_complete_run(tmp_path)
        store.results_path.unlink()
        cache = ArtifactCache(tmp_path)
        assert cache.replay(make_fingerprint()) is None

    def test_partial_run_refuses_to_replay(self, tmp_path):
        seed_partial_run(tmp_path)
        cache = ArtifactCache(tmp_path)
        assert cache.replay(make_fingerprint()) is None


class _Recorder:
    def __init__(self):
        self.events = []

    def emit(self, event_type, **fields):
        self.events.append((event_type, fields))


class TestCorruptReplay:
    """Regression: a corrupted result log must downgrade to a miss (with
    a ``cache_corrupt`` event), never crash the serving query."""

    def test_mid_log_damage_downgrades_to_miss(self, tmp_path):
        from repro.obs import MetricsRegistry

        store = seed_complete_run(tmp_path)
        data = bytearray(store.results_path.read_bytes())
        data[10] ^= 0xFF  # frame 0 payload byte: CRC check must fail
        store.results_path.write_bytes(bytes(data))

        journal = _Recorder()
        metrics = MetricsRegistry()
        cache = ArtifactCache(tmp_path, journal=journal, metrics=metrics)
        assert cache.replay(make_fingerprint()) is None
        assert metrics.snapshot()["serve.cache.corrupt"]["value"] == 1
        events = [e for e in journal.events if e[0] == "cache_corrupt"]
        assert len(events) == 1
        assert events[0][1]["run_id"] == store.fingerprint.run_id
        assert events[0][1]["reason"]

    def test_byte_truncated_log_downgrades_to_miss(self, tmp_path):
        # A torn tail replays clean but short: the committed union then
        # disagrees with the manifest's result_count — distrust, miss.
        store = seed_complete_run(tmp_path)
        data = store.results_path.read_bytes()
        store.results_path.write_bytes(data[: len(data) - 3])

        journal = _Recorder()
        cache = ArtifactCache(tmp_path, journal=journal)
        assert cache.replay(make_fingerprint()) is None
        events = [e for e in journal.events if e[0] == "cache_corrupt"]
        assert len(events) == 1


class TestPinning:
    def test_pin_is_refcounted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with cache.pinned("run-aa"):
            with cache.pinned("run-aa"):
                assert cache.pinned_ids() == {"run-aa"}
            assert cache.pinned_ids() == {"run-aa"}
        assert cache.pinned_ids() == set()

    def test_eviction_never_removes_a_pinned_entry(self, tmp_path):
        a = seed_complete_run(tmp_path, salt=0, pad_bytes=4096)
        b = seed_complete_run(tmp_path, salt=1, pad_bytes=4096)
        cache = ArtifactCache(tmp_path, max_bytes=0)
        with cache.pinned(a.fingerprint.run_id):
            evicted = cache.ensure_budget()
        assert evicted == [b.fingerprint.run_id]
        assert a.run_dir.is_dir() and not b.run_dir.exists()
        # Unpinned now; the budget still wants it gone.
        assert cache.ensure_budget() == [a.fingerprint.run_id]

    def test_touched_entries_outlive_untouched_ones(self, tmp_path):
        a = seed_complete_run(tmp_path, salt=0, pad_bytes=4096)
        b = seed_complete_run(tmp_path, salt=1, pad_bytes=4096)
        c = seed_complete_run(tmp_path, salt=2, pad_bytes=4096)
        # Make b the *oldest* by mtime, then touch it: the logical clock
        # must override mtime, so the untouched a and c evict first.
        old = os.path.getmtime(b.manifest_path) - 1000
        os.utime(b.manifest_path, (old, old))
        cache = ArtifactCache(tmp_path, max_bytes=5000)
        cache.touch(b.fingerprint.run_id)
        evicted = set(cache.ensure_budget())
        assert b.fingerprint.run_id not in evicted
        assert evicted == {a.fingerprint.run_id, c.fingerprint.run_id}


def info(run_id, nbytes, mtime):
    return CheckpointInfo(
        run_id=run_id, path=f"/nowhere/{run_id}", state="complete",
        pairs_done=1, pairs_total=1, result_count=1,
        bytes_total=nbytes, mtime=float(mtime),
    )


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_lru_victim_selection_properties(data):
    """The policy invariants, property-checked:

    * pinned entries are never selected, whatever the budget;
    * if the survivors still exceed the budget, every unpinned entry was
      selected (only pins may hold the budget blown);
    * victims are strictly older (by the recency-overlaid age key) than
      every unpinned survivor — it really is least-recently-used-first.
    """
    n = data.draw(st.integers(min_value=0, max_value=8))
    infos = [
        info(
            f"run-{i:02d}",
            data.draw(st.integers(min_value=0, max_value=1000)),
            data.draw(st.integers(min_value=0, max_value=5)),
        )
        for i in range(n)
    ]
    pinned = {
        i.run_id for i in infos if data.draw(st.booleans())
    }
    touched = [i.run_id for i in infos if data.draw(st.booleans())]
    recency = {run_id: tick for tick, run_id in enumerate(touched)}
    total = sum(i.bytes_total for i in infos)
    max_bytes = data.draw(st.integers(min_value=0, max_value=max(total, 1)))

    victims = select_lru_victims(
        infos, max_bytes, pinned=pinned, recency=recency
    )
    victim_ids = {v.run_id for v in victims}

    assert not (victim_ids & pinned)
    survivors = [i for i in infos if i.run_id not in victim_ids]
    leftover = sum(i.bytes_total for i in survivors)
    if leftover > max_bytes:
        assert all(i.run_id in pinned for i in survivors)

    def age_key(i):
        if i.run_id in recency:
            return (1, recency[i.run_id], i.run_id)
        return (0, i.mtime, i.run_id)

    unpinned_survivors = [i for i in survivors if i.run_id not in pinned]
    if victims and unpinned_survivors:
        assert max(age_key(v) for v in victims) < min(
            age_key(s) for s in unpinned_survivors
        )


class TestGcMaxBytes:
    def test_cli_prunes_lru_to_budget(self, tmp_path, capsys):
        a = seed_complete_run(tmp_path, salt=0, pad_bytes=4096)
        b = seed_partial_run(tmp_path, salt=1)
        old = os.path.getmtime(a.manifest_path) - 1000
        os.utime(a.manifest_path, (old, old))
        rc = main([
            "checkpoints", "gc", "--dir", str(tmp_path),
            "--max-bytes", "600", "--json",
        ])
        assert rc == 0
        # Size-based pruning ignores completeness: the big old complete
        # run goes first even though default gc would have kept b's
        # resumable state only by policy, not by age.
        assert not a.run_dir.exists()
        assert b.run_dir.is_dir()

    def test_cli_refuses_max_bytes_plus_run_selector(self, tmp_path):
        seed_complete_run(tmp_path)
        rc = main([
            "checkpoints", "gc", "--dir", str(tmp_path),
            "--max-bytes", "0", "--all",
        ])
        assert rc == 2

    def test_library_refuses_mixed_policies(self, tmp_path):
        seed_complete_run(tmp_path)
        try:
            gc_checkpoint_dir(tmp_path, max_bytes=0, all_runs=True)
        except ValueError:
            pass
        else:
            raise AssertionError("mixed gc policies must be rejected")


class TestDiskBudgetRelease:
    """Evictions and quarantines must return their bytes to an attached
    disk budget — the serve tier's admission headroom comes back when
    entries leave the governed cache directory."""

    def test_eviction_releases_charged_bytes(self, tmp_path):
        from repro.checkpoint import inspect_checkpoint_dir
        from repro.storage import DiskBudget

        seed_complete_run(tmp_path, salt=0, pad_bytes=4096)
        seed_complete_run(tmp_path, salt=1, pad_bytes=4096)
        total = sum(i.bytes_total for i in inspect_checkpoint_dir(tmp_path))
        budget = DiskBudget()
        budget.charge(total, "cache")
        cache = ArtifactCache(tmp_path, max_bytes=0, budget=budget)
        evicted = cache.ensure_budget()
        assert len(evicted) == 2
        assert budget.used == 0
        assert budget.high_watermark == total

    def test_quarantine_releases_charged_bytes(self, tmp_path):
        from repro.storage import DiskBudget

        store = seed_complete_run(tmp_path, salt=0, pad_bytes=1024)
        nbytes = sum(
            f.stat().st_size
            for f in store.run_dir.rglob("*") if f.is_file()
        )
        budget = DiskBudget()
        budget.charge(nbytes, "cache")
        cache = ArtifactCache(tmp_path, budget=budget)
        assert cache.quarantine(store.fingerprint.run_id, "test damage")
        assert budget.used == 0
        assert not store.run_dir.exists()
