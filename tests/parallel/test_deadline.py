"""Run deadlines: cooperative cancellation at every stage of a join.

The contract: ``deadline_s`` bounds the whole run.  Past it the
coordinator stops dispatching, abandons in-flight futures through the
pool-abandonment path, and raises the typed
:class:`~repro.parallel.DeadlineExceededError` — and everything
committed before the expiry stays adoptable, so a retry *resumes*.
"""

import json

import pytest

from repro import intersects
from repro.data import generate_hydrography, generate_roads
from repro.faults import load_plan
from repro.obs import RunJournal
from repro.parallel import (
    DeadlineExceededError,
    ProcessPBSM,
    serial_feature_pairs,
)

SCALE = 0.002
NUM_PAIRS = 8
STALL_SEED = 3  # pins the hang to one pair's attempt 0 across the suite


@pytest.fixture(scope="module")
def workload():
    tuples_r = list(generate_roads(scale=SCALE))
    tuples_s = list(generate_hydrography(scale=SCALE))
    expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)
    return tuples_r, tuples_s, expected


def stall_plan(hang_s):
    return load_plan(
        "deadline_stall", seed=STALL_SEED, num_pairs=NUM_PAIRS, hang_s=hang_s
    )


def journal_types(path):
    return [
        json.loads(line)["type"]
        for line in path.read_text().splitlines()
    ]


class TestValidation:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            ProcessPBSM(2, deadline_s=0)
        with pytest.raises(ValueError):
            ProcessPBSM(2, deadline_s=-1.0)

    def test_generous_deadline_changes_nothing(self, workload):
        tuples_r, tuples_s, expected = workload
        result = ProcessPBSM(
            2, num_partitions=NUM_PAIRS, deadline_s=300.0
        ).run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected


class TestQueuedExpiry:
    def test_expiry_before_any_dispatch_abandons_nothing(
        self, workload, tmp_path
    ):
        # A deadline that cannot survive partitioning expires with the
        # whole pair domain still queued: nothing committed, nothing in
        # flight — and crucially no pool abandonment (a purely queued
        # expiry must not kill a healthy pool other tenants may share).
        tuples_r, tuples_s, _ = workload
        journal = RunJournal(tmp_path / "journal.jsonl")
        engine = ProcessPBSM(
            2, num_partitions=NUM_PAIRS, deadline_s=1e-6, journal=journal,
        )
        with pytest.raises(DeadlineExceededError) as info:
            engine.run(tuples_r, tuples_s, intersects)
        journal.close()
        err = info.value
        assert err.deadline_s == 1e-6
        assert err.completed == 0
        assert err.pending == NUM_PAIRS
        types = journal_types(tmp_path / "journal.jsonl")
        assert "deadline_exceeded" in types
        assert "pool_respawn" not in types


class TestDispatchedExpiry:
    def test_stalled_worker_is_abandoned_through_the_pool(
        self, workload, tmp_path
    ):
        # One pair hangs for longer than the deadline: the expiry finds
        # futures in flight and must retire the pool to walk away from
        # the wedged worker (it cannot be killed without breaking the
        # executor).  Everything harvested before the expiry counts.
        tuples_r, tuples_s, _ = workload
        journal = RunJournal(tmp_path / "journal.jsonl")
        engine = ProcessPBSM(
            2, num_partitions=NUM_PAIRS,
            fault_plan=stall_plan(4.0), deadline_s=1.5, journal=journal,
        )
        with pytest.raises(DeadlineExceededError) as info:
            engine.run(tuples_r, tuples_s, intersects)
        journal.close()
        err = info.value
        assert err.completed + err.pending == NUM_PAIRS
        assert err.pending >= 1  # the stalled pair never committed
        assert "stalled" not in str(err)  # message speaks in pair counts
        assert f"{err.completed} pairs committed" in str(err)
        types = journal_types(tmp_path / "journal.jsonl")
        assert "deadline_exceeded" in types
        assert "pool_respawn" in types  # in-flight work forced abandonment


class TestSerialExpiry:
    def test_run_serial_checks_between_pairs(self, workload):
        # The shed path has no pool to abandon, but the same deadline
        # applies between pair rebuilds.
        tuples_r, tuples_s, _ = workload
        engine = ProcessPBSM(
            2, num_partitions=NUM_PAIRS, deadline_s=0.005
        )
        with pytest.raises(DeadlineExceededError) as info:
            engine.run_serial(tuples_r, tuples_s, intersects)
        err = info.value
        assert err.completed + err.pending == NUM_PAIRS
        assert err.pending >= 1

    def test_run_serial_without_deadline_is_exact(self, workload):
        tuples_r, tuples_s, expected = workload
        result = ProcessPBSM(2, num_partitions=NUM_PAIRS).run_serial(
            tuples_r, tuples_s, intersects
        )
        assert result.pairs == expected
        assert result.backend == "process-serial"
        assert result.duplicates_dropped == 0


class TestAdoptableState:
    def test_deadlined_checkpoint_resumes_to_the_exact_answer(
        self, workload, tmp_path
    ):
        # A deadlined run's committed prefix is durable: a retry resumes
        # (replaying exactly the committed pairs) and lands on the
        # byte-identical answer — the serve tier's warm-retry story.
        tuples_r, tuples_s, expected = workload
        engine = ProcessPBSM(
            2, num_partitions=NUM_PAIRS,
            fault_plan=stall_plan(4.0), deadline_s=1.5,
            checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(DeadlineExceededError) as info:
            engine.run(tuples_r, tuples_s, intersects)

        retry = ProcessPBSM(
            2, num_partitions=NUM_PAIRS, checkpoint_dir=str(tmp_path)
        )
        result = retry.resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert len(result.resumed_pairs) == info.value.completed
