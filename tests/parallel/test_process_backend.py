"""The true multiprocess backend: equivalence, scheduling, observability.

The contract under test is the tentpole invariant: for any seed and scale,
the sorted feature-id pair set is byte-identical across the serial
reference, the simulated shared-nothing engine, and the real process pool
at any worker count.
"""

import pytest

from repro import intersects
from repro.data import generate_hydrography, generate_roads
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import (
    REPLICATE_MBRS,
    ParallelPBSM,
    ProcessPBSM,
    parallel_join,
    serial_feature_pairs,
)


def _workload(scale, seed=None):
    if seed is None:
        tuples_r = list(generate_roads(scale=scale))
        tuples_s = list(generate_hydrography(scale=scale))
    else:
        tuples_r = list(generate_roads(scale=scale, seed=seed))
        tuples_s = list(generate_hydrography(scale=scale, seed=seed + 1))
    return tuples_r, tuples_s


@pytest.fixture(scope="module")
def workload():
    tuples_r, tuples_s = _workload(0.002)
    expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)
    return tuples_r, tuples_s, expected


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("scale,seed", [
        (0.002, None),
        (0.002, 7),
        (0.003, 21),
        (0.001, 99),
    ])
    def test_all_backends_same_pairs(self, scale, seed):
        tuples_r, tuples_s = _workload(scale, seed)
        serial = parallel_join(tuples_r, tuples_s, intersects, backend="serial")
        assert serial.pairs, "workload must be non-trivial"
        simulated = parallel_join(
            tuples_r, tuples_s, intersects, backend="simulated", workers=3
        )
        process = parallel_join(
            tuples_r, tuples_s, intersects, backend="process", workers=2
        )
        assert simulated.pairs == serial.pairs
        assert process.pairs == serial.pairs
        assert serial.backend == "serial"
        assert simulated.backend == "simulated"
        assert process.backend == "process"

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_never_changes_pairs(self, workload, workers):
        tuples_r, tuples_s, expected = workload
        result = ProcessPBSM(workers).run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected

    def test_partition_count_never_changes_pairs(self, workload):
        tuples_r, tuples_s, expected = workload
        for num_partitions in (1, 3, 16):
            result = ProcessPBSM(2, num_partitions=num_partitions).run(
                tuples_r, tuples_s, intersects
            )
            assert result.pairs == expected, num_partitions

    def test_spawn_start_method(self, workload):
        # The strictest start method: workers must import everything fresh
        # and receive state only through pickled tasks.
        tuples_r, tuples_s, expected = workload
        result = ProcessPBSM(2, start_method="spawn").run(
            tuples_r, tuples_s, intersects
        )
        assert result.pairs == expected

    def test_empty_inputs(self):
        result = ProcessPBSM(2).run([], [], intersects)
        assert result.pairs == []
        assert result.backend == "process"


class TestScheduling:
    def test_task_reports(self, workload):
        tuples_r, tuples_s, expected = workload
        result = ProcessPBSM(2, num_partitions=8).run(
            tuples_r, tuples_s, intersects
        )
        assert result.tasks
        # Reports come back keyed by partition index, ascending.
        indices = [t.index for t in result.tasks]
        assert indices == sorted(indices)
        # The LPT seed is the spilled key-pointer count: positive, and at
        # least the input sizes summed across tasks (tile replication).
        assert all(t.cost_estimate > 0 for t in result.tasks)
        assert sum(t.cost_estimate for t in result.tasks) >= (
            len(tuples_r) + len(tuples_s)
        )
        # Per-task results union (with boundary duplicates) covers the
        # merged result.
        assert sum(t.results for t in result.tasks) >= len(result.pairs)
        # Every task executed on a worker that the per-node rollups know.
        node_work = sum(n.local_pairs for n in result.nodes)
        assert node_work == sum(t.results for t in result.tasks)

    def test_wall_clock_measured(self, workload):
        tuples_r, tuples_s, _ = workload
        result = ProcessPBSM(2).run(tuples_r, tuples_s, intersects)
        assert result.wall_s > 0
        assert result.critical_path_s <= result.total_work_s

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessPBSM(0)
        with pytest.raises(ValueError):
            ProcessPBSM(2, num_partitions=0)
        with pytest.raises(ValueError):
            parallel_join([], [], intersects, backend="quantum")


class TestWorkerObservability:
    def test_adoption_preserves_totals(self, workload):
        tuples_r, tuples_s, expected = workload
        tracer = Tracer()
        metrics = MetricsRegistry()
        result = ProcessPBSM(2, tracer=tracer, metrics=metrics).run(
            tuples_r, tuples_s, intersects
        )
        assert result.pairs == expected

        snapshot = metrics.snapshot()
        # Every worker's result counter was merged: the coordinator total
        # equals the per-node rollups, which equal the per-task reports.
        assert snapshot["parallel.worker.results"]["value"] == sum(
            n.local_pairs for n in result.nodes
        )
        assert snapshot["parallel.worker.candidates"]["value"] == sum(
            t.candidates for t in result.tasks
        )
        # One histogram observation per executed task.
        assert (
            snapshot["parallel.worker.task_keypointers"]["count"]
            == len(result.tasks)
        )

    def test_adopted_spans_form_one_timeline(self, workload):
        tuples_r, tuples_s, _ = workload
        tracer = Tracer()
        ProcessPBSM(2, tracer=tracer).run(tuples_r, tuples_s, intersects)

        task_spans = tracer.find("worker.task")
        assert task_spans, "worker spans must be adopted"
        for span in task_spans:
            # Re-anchored onto the coordinator clock: sane duration, tagged
            # with the worker that produced it, children intact.
            assert span.end >= span.start
            assert "worker" in span.tags
            child_names = {c.name for c in span.children}
            assert child_names == {"worker.merge", "worker.refine"}
        assert tracer.find("process.partition")
        assert tracer.find("process.execute")


class TestCandidateFetchCharging:
    def test_charging_candidates_counts_at_least_result_fetches(self):
        tuples_r, tuples_s = _workload(0.002)
        expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)

        default = ParallelPBSM(6, scheme=REPLICATE_MBRS).run(
            tuples_r, tuples_s, intersects
        )
        charged = ParallelPBSM(
            6, scheme=REPLICATE_MBRS, charge_candidate_fetches=True
        ).run(tuples_r, tuples_s, intersects)

        # Same answer either way — the flag only changes the accounting.
        assert default.pairs == expected
        assert charged.pairs == expected
        # False-positive candidates can only add fetches, never remove.
        assert charged.remote_fetches >= default.remote_fetches > 0
        for node_default, node_charged in zip(default.nodes, charged.nodes):
            assert node_charged.remote_fetches >= node_default.remote_fetches
