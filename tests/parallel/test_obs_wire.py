"""Cross-process observability: span wire format and metrics merging."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Span, Tracer


def _finished_tracer():
    """A tracer with a small finished span tree carrying tags."""
    tracer = Tracer()
    with tracer.span("task", pair=3) as outer:
        with tracer.span("merge"):
            pass
        with tracer.span("refine", candidates=7):
            pass
        outer.tag("results", 2)
    return tracer


class TestSpanWire:
    def test_round_trip_preserves_structure(self):
        tracer = _finished_tracer()
        payload = tracer.export_wire()
        assert len(payload) == 1

        rebuilt = Span.from_wire(payload[0])
        original = tracer.roots[0]
        assert rebuilt.name == original.name
        assert rebuilt.tags == original.tags
        assert [c.name for c in rebuilt.children] == ["merge", "refine"]
        assert rebuilt.children[1].tags == {"candidates": 7}
        # Durations survive exactly; absolute times became epoch-relative.
        assert rebuilt.cpu_s == pytest.approx(original.cpu_s)
        assert rebuilt.end <= original.end

    def test_wire_is_json_ready(self):
        import json

        payload = _finished_tracer().export_wire()
        assert json.loads(json.dumps(payload)) == payload

    def test_adopt_wire_reanchors_to_at(self):
        payload = _finished_tracer().export_wire()
        coordinator = Tracer()
        adopted = coordinator.adopt_wire(payload, at=100.0, worker=42)

        assert len(adopted) == 1
        root = adopted[0]
        assert root.end == pytest.approx(100.0)
        assert root.tags["worker"] == 42
        # Children keep their offsets inside the re-anchored root.
        for child in root.children:
            assert root.start <= child.start <= child.end <= root.end
        assert coordinator.find("task") == [root]

    def test_adopt_wire_lands_under_open_span(self):
        payload = _finished_tracer().export_wire()
        coordinator = Tracer()
        with coordinator.span("execute") as execute:
            coordinator.adopt_wire(payload, worker=1)
        assert [c.name for c in execute.children] == ["task"]

    def test_adopt_empty_payload(self):
        coordinator = Tracer()
        assert coordinator.adopt_wire([]) == []
        assert coordinator.roots == []

    def test_null_tracer_wire_noops(self):
        assert NULL_TRACER.export_wire() == []
        assert NULL_TRACER.adopt_wire([{"name": "x"}]) == []


class TestMergeSnapshot:
    def test_counters_add(self):
        worker = MetricsRegistry()
        worker.counter("results").inc(5)
        coordinator = MetricsRegistry()
        coordinator.counter("results").inc(2)
        coordinator.merge_snapshot(worker.snapshot())
        coordinator.merge_snapshot(worker.snapshot())
        assert coordinator.counter("results").value == 12

    def test_gauges_take_last_write(self):
        worker = MetricsRegistry()
        worker.gauge("partitions").set(16)
        coordinator = MetricsRegistry()
        coordinator.gauge("partitions").set(4)
        coordinator.merge_snapshot(worker.snapshot())
        assert coordinator.gauge("partitions").value == 16

    def test_histograms_add_bucketwise(self):
        worker_a = MetricsRegistry()
        worker_b = MetricsRegistry()
        for value in (1, 10, 100):
            worker_a.histogram("sizes").observe(value)
        worker_b.histogram("sizes").observe(1000)

        coordinator = MetricsRegistry()
        coordinator.merge_snapshot(worker_a.snapshot())
        coordinator.merge_snapshot(worker_b.snapshot())

        merged = coordinator.histogram("sizes")
        assert merged.count == 4
        assert merged.total == 1111
        assert merged.min == 1
        assert merged.max == 1000
        # Bucket counts equal observing everything in one registry.
        direct = MetricsRegistry()
        for value in (1, 10, 100, 1000):
            direct.histogram("sizes").observe(value)
        assert merged.counts == direct.histogram("sizes").counts

    def test_histogram_bounds_mismatch_rejected(self):
        worker = MetricsRegistry()
        worker.histogram("sizes", buckets=(1, 2, 3)).observe(2)
        coordinator = MetricsRegistry()
        coordinator.histogram("sizes")  # default bounds
        with pytest.raises(ValueError, match="bucket bounds"):
            coordinator.merge_snapshot(worker.snapshot())

    def test_unknown_kind_rejected(self):
        coordinator = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown instrument"):
            coordinator.merge_snapshot({"x": {"type": "sparkline"}})

    def test_disabled_coordinator_ignores(self):
        worker = MetricsRegistry()
        worker.counter("results").inc(5)
        coordinator = MetricsRegistry(enabled=False)
        coordinator.merge_snapshot(worker.snapshot())  # no-op, no error
        assert coordinator.snapshot() == {}

    def test_disabled_worker_snapshot_is_harmless(self):
        worker = MetricsRegistry(enabled=False)
        worker.counter("results").inc(5)
        coordinator = MetricsRegistry()
        coordinator.merge_snapshot({"results": worker.counter("results").snapshot()})
        assert "results" not in coordinator.snapshot()
