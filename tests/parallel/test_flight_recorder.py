"""Flight-recorder integration: journaled runs, deterministic reports.

Three contracts:

* a journaled process run records the full task lifecycle — dispatches,
  worker-side start/finish events (shipped on the result wire), liveness
  heartbeats, sampler ticks, and the schedule itself;
* two chaos runs with the same seed render **byte-identical** report
  bodies naming the planned fault pairs (the acceptance criterion);
* a kill-then-resume run journals the adopted pairs as ``task_replayed``
  and the analyzer excludes them from straggler/critical-path analysis.
"""

from collections import Counter

import pytest

from repro import intersects
from repro.data import generate_hydrography, generate_roads
from repro.faults import CoordinatorKilledError, load_plan
from repro.obs import RunJournal, Tracer, analyze_events, render_report
from repro.obs.journal import journal_path, read_journal
from repro.parallel import ProcessPBSM, serial_feature_pairs

SCALE = 0.001
NUM_PARTITIONS = 8
WORKERS = 2


@pytest.fixture(scope="module")
def workload():
    tuples_r = list(generate_roads(scale=SCALE))
    tuples_s = list(generate_hydrography(scale=SCALE))
    expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)
    assert expected, "flight-recorder tests need a non-trivial workload"
    return tuples_r, tuples_s, expected


class TestJournaledRun:
    def test_clean_run_records_full_lifecycle(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload
        journal = RunJournal(journal_path(tmp_path))
        result = ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, journal=journal,
        ).run(tuples_r, tuples_s, intersects)
        journal.close()
        assert result.pairs == expected

        records = read_journal(journal_path(tmp_path))
        counts = Counter(r["type"] for r in records)
        assert counts["run_started"] == 1
        assert counts["run_finished"] == 1
        assert counts["partition_sealed"] == 2
        assert counts["schedule"] == 1
        assert counts["task_dispatched"] == NUM_PARTITIONS
        assert counts["task_started"] == NUM_PARTITIONS
        assert counts["task_finished"] == NUM_PARTITIONS
        # Three heartbeats per pair: merge, refine, done.
        assert counts["worker_heartbeat"] == 3 * NUM_PARTITIONS

    def test_worker_events_ride_the_wire(self, tmp_path, workload):
        tuples_r, tuples_s, _ = workload
        journal = RunJournal(journal_path(tmp_path))
        ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, journal=journal,
        ).run(tuples_r, tuples_s, intersects)
        journal.close()
        records = read_journal(journal_path(tmp_path))
        started = [r for r in records if r["type"] == "task_started"]
        finished = [r for r in records if r["type"] == "task_finished"]
        # Worker-side events are re-emitted by the coordinator with the
        # producer's clock preserved, so ordering questions stay answerable.
        assert all("worker_t" in r and r["pid"] > 0 for r in started)
        assert all(r["wall_s"] >= 0 for r in finished)
        assert {r["pair"] for r in finished} == set(range(NUM_PARTITIONS))

    def test_sampler_emits_utilization_ticks(self, tmp_path, workload):
        tuples_r, tuples_s, _ = workload
        journal = RunJournal(journal_path(tmp_path))
        ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, journal=journal,
            sample_interval_s=0.0001,
        ).run(tuples_r, tuples_s, intersects)
        journal.close()
        samples = [
            r for r in read_journal(journal_path(tmp_path))
            if r["type"] == "sample"
        ]
        assert samples, "scheduling loop never sampled"
        tick = samples[0]
        assert set(tick) >= {"queued", "inflight", "done", "total", "workers"}
        assert tick["total"] == NUM_PARTITIONS

    def test_schedule_event_carries_lpt_order(self, tmp_path, workload):
        tuples_r, tuples_s, _ = workload
        journal = RunJournal(journal_path(tmp_path))
        ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, journal=journal,
        ).run(tuples_r, tuples_s, intersects)
        journal.close()
        (schedule,) = [
            r for r in read_journal(journal_path(tmp_path))
            if r["type"] == "schedule"
        ]
        costs = [item["cost"] for item in schedule["order"]]
        assert costs == sorted(costs, reverse=True)  # LPT: heaviest first
        assert {item["pair"] for item in schedule["order"]} == set(
            range(NUM_PARTITIONS)
        )


class TestChaosReportDeterminism:
    def _run(self, workload):
        tuples_r, tuples_s, expected = workload
        plan = load_plan("worker_faults", seed=42, num_pairs=NUM_PARTITIONS)
        journal = RunJournal()
        result = ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, journal=journal,
            fault_plan=plan,
        ).run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        return render_report(analyze_events(journal.records))

    def test_same_seed_runs_render_byte_identical_reports(self, workload):
        # The acceptance criterion: the default report body is a pure
        # function of the workload seed and the fault plan — collateral
        # retries and pool timing must not leak into it.
        assert self._run(workload) == self._run(workload)

    def test_report_names_the_planned_fault_pairs(self, workload):
        report = self._run(workload)
        # worker_faults @ seed 42 over 8 pairs compiles to exactly these
        # injection points (a crash pre-empts same-attempt co-faults).
        assert "`disk_read_error` (pair 0, attempt 0)" in report
        assert "`slow_task` (pair 4, attempt 0)" in report
        assert "`worker_crash` (pair 7, attempt 0)" in report


class TestResumeThenReport:
    def test_replayed_pairs_are_tagged_and_excluded(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload

        def engine(journal, **kwargs):
            return ProcessPBSM(
                WORKERS, num_partitions=NUM_PARTITIONS, journal=journal,
                checkpoint_dir=str(tmp_path / "ckpt"), **kwargs,
            )

        # Kill after ordinal 8: manifest + 2 seals + merging = 4, so four
        # result commits are durable when the coordinator dies.
        first = RunJournal()
        with pytest.raises(CoordinatorKilledError):
            engine(first, kill_coordinator_after=8).run(
                tuples_r, tuples_s, intersects
            )

        second = RunJournal(journal_path(tmp_path))
        tracer = Tracer()
        result = engine(second, tracer=tracer).resume(
            tuples_r, tuples_s, intersects
        )
        second.close()
        assert result.pairs == expected
        assert len(result.resumed_pairs) == 4

        records = read_journal(journal_path(tmp_path))
        replayed = [r for r in records if r["type"] == "task_replayed"]
        assert sorted(r["pair"] for r in replayed) == result.resumed_pairs

        analysis = analyze_events(records)
        assert analysis.resuming is True
        assert analysis.replayed_pairs == result.resumed_pairs
        executed = {p.pair for p in analysis.executed_pairs}
        assert executed.isdisjoint(analysis.replayed_pairs)
        assert executed | set(analysis.replayed_pairs) == set(
            range(NUM_PARTITIONS)
        )
        for stats in analysis.stragglers_by_cost():
            assert stats.pair not in analysis.replayed_pairs

        # Adopted spans carry the replayed tag for the trace-side exclusion.
        adopted = [
            root for root in tracer.roots if root.tags.get("replayed")
        ]
        assert len(adopted) == len(result.resumed_pairs)

        report = render_report(analysis)
        assert "## Resumed work" in report
        assert f"{analysis.replayed_pairs}" in report
