"""Tests for polygons, swiss-cheese polygons and containment predicates."""

import math

import numpy as np
import pytest

from repro.geometry import (
    Polygon,
    Rect,
    maximal_enclosed_rect,
    point_in_ring,
    polygon_contains_filtered,
    rect_inside_polygon,
    ring_area_signed,
)

SQUARE = [(0, 0), (10, 0), (10, 10), (0, 10)]
SMALL_SQUARE = [(4, 4), (6, 4), (6, 6), (4, 6)]


def star_polygon(cx, cy, radius, n=20, seed=0, min_frac=0.6):
    rng = np.random.default_rng(seed)
    angles = np.sort(rng.uniform(0, 2 * math.pi, n))
    radii = rng.uniform(min_frac * radius, radius, n)
    return Polygon(
        [(cx + r * math.cos(a), cy + r * math.sin(a)) for a, r in zip(angles, radii)]
    )


class TestConstruction:
    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_closing_point_stripped(self):
        p = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(p.shell) == 3

    def test_num_points_includes_holes(self):
        p = Polygon(SQUARE, [SMALL_SQUARE])
        assert p.num_points == 8

    def test_mbr(self):
        assert Polygon(SQUARE).mbr == Rect(0, 0, 10, 10)

    def test_rings(self):
        p = Polygon(SQUARE, [SMALL_SQUARE])
        assert len(p.rings) == 2


class TestArea:
    def test_square_area(self):
        assert Polygon(SQUARE).area() == pytest.approx(100.0)

    def test_area_orientation_invariant(self):
        assert Polygon(list(reversed(SQUARE))).area() == pytest.approx(100.0)

    def test_swiss_cheese_area_subtracts_holes(self):
        p = Polygon(SQUARE, [SMALL_SQUARE])
        assert p.area() == pytest.approx(96.0)

    def test_ring_area_signed_ccw_positive(self):
        assert ring_area_signed(SQUARE) > 0
        assert ring_area_signed(list(reversed(SQUARE))) < 0


class TestPointInPolygon:
    def test_inside(self):
        assert Polygon(SQUARE).contains_point(5, 5)

    def test_outside(self):
        assert not Polygon(SQUARE).contains_point(15, 5)

    def test_boundary_is_inside(self):
        assert Polygon(SQUARE).contains_point(0, 5)
        assert Polygon(SQUARE).contains_point(0, 0)

    def test_point_in_hole_is_outside(self):
        p = Polygon(SQUARE, [SMALL_SQUARE])
        assert not p.contains_point(5, 5)
        assert p.contains_point(1, 1)

    def test_hole_boundary_belongs_to_polygon(self):
        p = Polygon(SQUARE, [SMALL_SQUARE])
        assert p.contains_point(4, 5)

    def test_point_in_ring_concave(self):
        # A "U" shape: the notch is outside.
        u_shape = [(0, 0), (6, 0), (6, 6), (4, 6), (4, 2), (2, 2), (2, 6), (0, 6)]
        assert point_in_ring(1, 5, u_shape)
        assert not point_in_ring(3, 5, u_shape)
        assert point_in_ring(3, 1, u_shape)


class TestIntersects:
    def test_overlapping_squares(self):
        a = Polygon(SQUARE)
        b = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint_squares(self):
        a = Polygon(SQUARE)
        b = Polygon([(20, 20), (30, 20), (30, 30), (20, 30)])
        assert not a.intersects(b)

    def test_nested_intersects(self):
        assert Polygon(SQUARE).intersects(Polygon(SMALL_SQUARE))
        assert Polygon(SMALL_SQUARE).intersects(Polygon(SQUARE))

    def test_mbr_overlap_but_disjoint(self):
        a = Polygon([(0, 0), (10, 0), (0, 10)])  # lower-left triangle
        b = Polygon([(9, 9), (10, 10), (8, 10)])  # upper-right sliver
        assert a.mbr.intersects(b.mbr)
        assert not a.intersects(b)


class TestContains:
    def test_nested(self):
        assert Polygon(SQUARE).contains(Polygon(SMALL_SQUARE))

    def test_not_contains_overlapping(self):
        b = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert not Polygon(SQUARE).contains(b)

    def test_not_contains_disjoint(self):
        b = Polygon([(20, 20), (30, 20), (30, 30), (20, 30)])
        assert not Polygon(SQUARE).contains(b)

    def test_inner_never_contains_outer(self):
        assert not Polygon(SMALL_SQUARE).contains(Polygon(SQUARE))

    def test_island_in_hole_not_contained(self):
        cheese = Polygon(SQUARE, [SMALL_SQUARE])
        tiny = Polygon([(4.5, 4.5), (5.5, 4.5), (5.5, 5.5), (4.5, 5.5)])
        assert not cheese.contains(tiny)

    def test_island_beside_hole_contained(self):
        cheese = Polygon(SQUARE, [SMALL_SQUARE])
        beside = Polygon([(1, 1), (2, 1), (2, 2), (1, 2)])
        assert cheese.contains(beside)

    def test_star_contains_small_star(self):
        outer = star_polygon(0, 0, 10, seed=1)
        inner = star_polygon(0, 0, 2, seed=2)
        assert outer.contains(inner)

    def test_star_does_not_contain_shifted(self):
        outer = star_polygon(0, 0, 10, seed=3)
        inner = star_polygon(25, 0, 2, seed=4)
        assert not outer.contains(inner)


class TestMERFilters:
    def test_mer_inside_polygon(self):
        mer = maximal_enclosed_rect(Polygon(SQUARE))
        assert mer is not None
        assert Rect(0, 0, 10, 10).contains(mer)
        assert mer.area > 0

    def test_mer_inside_star(self):
        poly = star_polygon(0, 0, 10, seed=5)
        mer = maximal_enclosed_rect(poly)
        assert mer is not None
        assert rect_inside_polygon(mer, poly)

    def test_rect_inside_polygon_true(self):
        assert rect_inside_polygon(Rect(1, 1, 9, 9), Polygon(SQUARE))

    def test_rect_inside_polygon_false_poking(self):
        assert not rect_inside_polygon(Rect(5, 5, 15, 9), Polygon(SQUARE))

    def test_rect_rejected_when_hole_inside(self):
        cheese = Polygon(SQUARE, [SMALL_SQUARE])
        assert not rect_inside_polygon(Rect(3, 3, 7, 7), cheese)

    def test_filtered_containment_matches_exact(self):
        outer = star_polygon(0, 0, 10, seed=6)
        mer = maximal_enclosed_rect(outer)
        for seed in range(10):
            inner = star_polygon(seed - 5, 0, 2, seed=seed + 10)
            exact = outer.contains(inner)
            filtered = polygon_contains_filtered(outer, inner, mer)
            assert filtered == exact, f"seed {seed}: filtered {filtered} != {exact}"
