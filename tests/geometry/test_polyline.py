"""Tests for polylines and the sweep vs naive intersection equivalence."""

import pytest
from hypothesis import given, settings

from repro.geometry import (
    Polyline,
    Rect,
    polylines_intersect_naive,
    polylines_intersect_sweep,
)
from tests.conftest import polyline_points


class TestPolylineBasics:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Polyline([(0, 0)])

    def test_mbr(self):
        pl = Polyline([(0, 0), (2, 3), (-1, 1)])
        assert pl.mbr == Rect(-1, 0, 2, 3)

    def test_counts(self):
        pl = Polyline([(0, 0), (1, 0), (2, 0)])
        assert pl.num_points == 3
        assert pl.num_segments == 2
        assert len(pl.segments()) == 2

    def test_length(self):
        pl = Polyline([(0, 0), (3, 4), (3, 5)])
        assert pl.length() == pytest.approx(6.0)

    def test_points_coerced_to_float(self):
        pl = Polyline([(0, 0), (1, 1)])
        assert all(isinstance(c, float) for p in pl.points for c in p)


class TestIntersection:
    def test_crossing(self):
        a = Polyline([(0, 0), (2, 2)])
        b = Polyline([(0, 2), (2, 0)])
        assert a.intersects(b)

    def test_disjoint(self):
        a = Polyline([(0, 0), (1, 0)])
        b = Polyline([(0, 2), (1, 2)])
        assert not a.intersects(b)

    def test_mbrs_overlap_but_lines_do_not(self):
        # b's corner chain nests inside a's: MBRs overlap, chains do not.
        a = Polyline([(0, 0), (10, 0), (10, 10)])
        b = Polyline([(2, 2), (8, 2), (8, 8)])
        assert a.mbr.intersects(b.mbr)
        assert not a.intersects(b)
        assert not polylines_intersect_naive(a, b)

    def test_touching_at_endpoint(self):
        a = Polyline([(0, 0), (1, 1)])
        b = Polyline([(1, 1), (2, 0)])
        assert a.intersects(b)

    def test_long_chains_crossing_once(self):
        a = Polyline([(x, 0) for x in range(10)])
        b = Polyline([(4.5, -1), (4.5, 1)])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_self_comparison(self):
        a = Polyline([(0, 0), (1, 1), (2, 0)])
        assert a.intersects(a)


class TestSweepEqualsNaive:
    @given(polyline_points(), polyline_points())
    @settings(max_examples=200, deadline=None)
    def test_equivalence_random(self, pts_a, pts_b):
        a, b = Polyline(pts_a), Polyline(pts_b)
        assert polylines_intersect_sweep(a, b) == polylines_intersect_naive(a, b)

    def test_equivalence_vertical_segments(self):
        a = Polyline([(1, 0), (1, 5), (1, 10)])
        b = Polyline([(0, 5), (2, 5)])
        assert polylines_intersect_sweep(a, b) == polylines_intersect_naive(a, b) is True

    def test_equivalence_collinear_chains(self):
        a = Polyline([(0, 0), (5, 0)])
        b = Polyline([(3, 0), (8, 0)])
        assert polylines_intersect_sweep(a, b)
        assert polylines_intersect_naive(a, b)
