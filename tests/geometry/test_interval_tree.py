"""Tests for the static interval tree against brute force."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import IntervalTree


@st.composite
def interval_sets(draw, max_n=40):
    n = draw(st.integers(min_value=0, max_value=max_n))
    out = []
    for i in range(n):
        lo = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
        width = draw(st.floats(min_value=0, max_value=50, allow_nan=False))
        out.append((lo, lo + width, i))
    return out


def brute_stab(intervals, point):
    return sorted(p for lo, hi, p in intervals if lo <= point <= hi)


def brute_overlap(intervals, lo, hi):
    return sorted(p for ilo, ihi, p in intervals if ilo <= hi and lo <= ihi)


class TestConstruction:
    def test_empty(self):
        tree = IntervalTree([])
        assert len(tree) == 0
        assert tree.stabbing(0.0) == []
        assert tree.overlapping(-1, 1) == []

    def test_malformed_interval_raises(self):
        with pytest.raises(ValueError):
            IntervalTree([(2.0, 1.0, "x")])

    def test_malformed_query_raises(self):
        tree = IntervalTree([(0.0, 1.0, "a")])
        with pytest.raises(ValueError):
            tree.overlapping(5.0, 4.0)

    def test_len(self):
        assert len(IntervalTree([(0, 1, "a"), (2, 3, "b")])) == 2


class TestQueries:
    def test_stabbing_basic(self):
        tree = IntervalTree([(0, 10, "a"), (5, 15, "b"), (20, 30, "c")])
        assert sorted(tree.stabbing(7)) == ["a", "b"]
        assert tree.stabbing(25) == ["c"]
        assert tree.stabbing(17) == []

    def test_stabbing_at_endpoints(self):
        tree = IntervalTree([(0, 10, "a")])
        assert tree.stabbing(0) == ["a"]
        assert tree.stabbing(10) == ["a"]

    def test_overlapping_basic(self):
        tree = IntervalTree([(0, 10, "a"), (5, 15, "b"), (20, 30, "c")])
        assert sorted(tree.overlapping(8, 22)) == ["a", "b", "c"]
        assert sorted(tree.overlapping(16, 19)) == []

    def test_overlapping_touching_counts(self):
        tree = IntervalTree([(0, 10, "a")])
        assert tree.overlapping(10, 20) == ["a"]
        assert tree.overlapping(-5, 0) == ["a"]

    def test_identical_intervals(self):
        tree = IntervalTree([(1, 2, "a"), (1, 2, "b"), (1, 2, "c")])
        assert sorted(tree.stabbing(1.5)) == ["a", "b", "c"]

    def test_point_intervals(self):
        tree = IntervalTree([(5, 5, "a"), (6, 6, "b")])
        assert tree.stabbing(5) == ["a"]
        assert sorted(tree.overlapping(5, 6)) == ["a", "b"]


class TestAgainstBruteForce:
    @given(
        interval_sets(),
        st.floats(min_value=-150, max_value=150, allow_nan=False),
    )
    def test_stabbing_matches(self, intervals, point):
        tree = IntervalTree(intervals)
        assert sorted(tree.stabbing(point)) == brute_stab(intervals, point)

    @given(
        interval_sets(),
        st.floats(min_value=-150, max_value=150, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_overlapping_matches(self, intervals, lo, width):
        tree = IntervalTree(intervals)
        hi = lo + width
        assert sorted(tree.overlapping(lo, hi)) == brute_overlap(intervals, lo, hi)
