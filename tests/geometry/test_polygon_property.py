"""Property-based consistency tests for polygon predicates."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon, maximal_enclosed_rect, rect_inside_polygon


@st.composite
def star_polygons(draw, max_radius=10.0):
    cx = draw(st.floats(min_value=-50, max_value=50))
    cy = draw(st.floats(min_value=-50, max_value=50))
    radius = draw(st.floats(min_value=0.5, max_value=max_radius))
    n = draw(st.integers(min_value=4, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    angles = np.sort(rng.uniform(0, 2 * math.pi, n)) + np.arange(n) * 1e-9
    radii = rng.uniform(0.5 * radius, radius, n)
    return Polygon(
        [(cx + r * math.cos(a), cy + r * math.sin(a)) for a, r in zip(angles, radii)]
    )


class TestPredicateConsistency:
    @given(star_polygons(), star_polygons())
    @settings(max_examples=60, deadline=None)
    def test_containment_implies_intersection(self, outer, inner):
        if outer.contains(inner):
            assert outer.intersects(inner)
            assert outer.mbr.contains(inner.mbr)

    @given(star_polygons(), star_polygons())
    @settings(max_examples=60, deadline=None)
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(star_polygons())
    @settings(max_examples=40, deadline=None)
    def test_self_containment(self, poly):
        assert poly.intersects(poly)
        # A polygon's vertices all lie inside (boundary counts as inside).
        for x, y in poly.shell:
            assert poly.contains_point(x, y)

    @given(star_polygons())
    @settings(max_examples=30, deadline=None)
    def test_mer_is_enclosed_and_positive(self, poly):
        mer = maximal_enclosed_rect(poly)
        if mer is not None:
            assert rect_inside_polygon(mer, poly)
            assert poly.mbr.contains(mer)

    @given(star_polygons())
    @settings(max_examples=40, deadline=None)
    def test_area_positive_and_within_mbr(self, poly):
        assert 0 < poly.area() <= poly.mbr.area + 1e-9
