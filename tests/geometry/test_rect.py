"""Tests for the Rect MBR algebra."""


import pytest
from hypothesis import given

from repro.geometry import Rect
from tests.conftest import rects


class TestConstruction:
    def test_basic_fields(self):
        r = Rect(1.0, 2.0, 3.0, 5.0)
        assert (r.xl, r.yl, r.xu, r.yu) == (1.0, 2.0, 3.0, 5.0)

    def test_degenerate_point_allowed(self):
        r = Rect(1.0, 1.0, 1.0, 1.0)
        assert r.area == 0.0

    def test_malformed_x_raises(self):
        with pytest.raises(ValueError):
            Rect(2.0, 0.0, 1.0, 1.0)

    def test_malformed_y_raises(self):
        with pytest.raises(ValueError):
            Rect(0.0, 2.0, 1.0, 1.0)

    def test_from_points(self):
        r = Rect.from_points([(0, 5), (3, -1), (2, 2)])
        assert r == Rect(0, -1, 3, 5)

    def test_from_points_single(self):
        assert Rect.from_points([(1, 2)]) == Rect(1, 2, 1, 2)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_union_all(self):
        r = Rect.union_all([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert r == Rect(0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_all([])


class TestPredicates:
    def test_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_touching_edge_counts(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_touching_corner_counts(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_disjoint_x(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_disjoint_y(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 1.01, 1, 2))

    def test_contains_proper(self):
        assert Rect(0, 0, 10, 10).contains(Rect(1, 1, 2, 2))

    def test_contains_self(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(r)

    def test_contains_false_when_poking_out(self):
        assert not Rect(0, 0, 10, 10).contains(Rect(9, 9, 11, 10))

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.0, 1.0)  # boundary
        assert not r.contains_point(1.5, 0.5)


class TestAlgebra:
    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_intersection_overlap(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3)) == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_touching_is_degenerate(self):
        got = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert got == Rect(1, 0, 1, 1)


class TestMeasures:
    def test_area_margin(self):
        r = Rect(0, 0, 3, 4)
        assert r.area == 12.0
        assert r.margin == 7.0
        assert r.width == 3.0
        assert r.height == 4.0

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == (2.0, 1.0)

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_enlargement(self):
        r = Rect(0, 0, 1, 1)
        assert r.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)
        assert r.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == pytest.approx(0.0)

    def test_distance_to_point_inside_is_zero(self):
        assert Rect(0, 0, 2, 2).distance_to_point(1, 1) == 0.0

    def test_distance_to_point_outside(self):
        assert Rect(0, 0, 1, 1).distance_to_point(4, 5) == pytest.approx(5.0)

    def test_iter_and_as_tuple(self):
        r = Rect(1, 2, 3, 4)
        assert tuple(r) == (1, 2, 3, 4) == r.as_tuple()


class TestProperties:
    @given(rects(), rects())
    def test_union_covers_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)

    @given(rects(), rects())
    def test_overlap_area_matches_intersection(self, a, b):
        inter = a.intersection(b)
        expected = inter.area if inter is not None else 0.0
        assert a.overlap_area(b) == pytest.approx(expected)

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(rects())
    def test_contains_implies_intersects(self, a):
        big = Rect(a.xl - 1, a.yl - 1, a.xu + 1, a.yu + 1)
        assert big.contains(a)
        assert big.intersects(a)

    @given(rects(), rects(), rects())
    def test_union_associative_cover(self, a, b, c):
        u1 = a.union(b).union(c)
        u2 = a.union(b.union(c))
        assert u1 == u2
