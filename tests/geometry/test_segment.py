"""Tests for segment primitives: orientation and intersection."""

import pytest
from hypothesis import given

from repro.geometry import (
    on_segment,
    orientation,
    segment_intersection_point,
    segments_intersect,
)
from tests.conftest import points


class TestOrientation:
    def test_counterclockwise(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1

    def test_clockwise(self):
        assert orientation((0, 0), (1, 0), (1, -1)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_collinear_with_large_coordinates(self):
        assert orientation((1e6, 1e6), (2e6, 2e6), (3e6, 3e6)) == 0

    @given(points(), points(), points())
    def test_antisymmetric(self, p, q, r):
        assert orientation(p, q, r) == -orientation(p, r, q)


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment((0, 0), (1, 1), (2, 2))

    def test_endpoint(self):
        assert on_segment((0, 0), (0, 0), (2, 2))

    def test_outside_extent(self):
        assert not on_segment((0, 0), (3, 3), (2, 2))


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (1, 1))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel_non_collinear(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_almost_touching(self):
        assert not segments_intersect((0, 0), (1, 0), (0.5, 1e-6), (0.5, 1))

    @given(points(), points(), points(), points())
    def test_symmetric(self, p1, p2, p3, p4):
        assert segments_intersect(p1, p2, p3, p4) == segments_intersect(
            p3, p4, p1, p2
        )

    @given(points(), points())
    def test_segment_intersects_itself(self, p1, p2):
        assert segments_intersect(p1, p2, p1, p2)


class TestIntersectionPoint:
    def test_proper_crossing_point(self):
        pt = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert pt == pytest.approx((1.0, 1.0))

    def test_disjoint_returns_none(self):
        assert segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_lines_cross_but_segments_do_not(self):
        # Infinite lines meet at (5, 5) — outside both segments.
        assert segment_intersection_point((0, 0), (1, 1), (10, 0), (6, 4)) is None

    def test_collinear_overlap_returns_shared_point(self):
        pt = segment_intersection_point((0, 0), (2, 0), (1, 0), (3, 0))
        assert pt is not None
        x, y = pt
        assert y == pytest.approx(0.0)
        assert 1.0 - 1e-9 <= x <= 2.0 + 1e-9

    def test_intersection_point_consistent_with_predicate(self):
        cases = [
            ((0, 0), (2, 2), (0, 2), (2, 0)),
            ((0, 0), (1, 0), (0, 1), (1, 1)),
            ((0, 0), (2, 0), (1, 0), (1, 1)),
        ]
        for p1, p2, p3, p4 in cases:
            has_point = segment_intersection_point(p1, p2, p3, p4) is not None
            assert has_point == segments_intersect(p1, p2, p3, p4)
