"""Tests for the plane-sweep rectangle join (the PBSM merge engine)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Rect,
    naive_join_pairs,
    sweep_join,
    sweep_join_interval_tree,
    sweep_join_pairs,
)
from tests.conftest import rects


@st.composite
def rect_lists(draw, max_n=25):
    n = draw(st.integers(min_value=0, max_value=max_n))
    return [(draw(rects()), i) for i in range(n)]


def as_sets(pairs):
    return sorted(pairs)


class TestSweepJoinBasics:
    def test_empty_inputs(self):
        assert sweep_join_pairs([], []) == []
        assert sweep_join_pairs([(Rect(0, 0, 1, 1), "a")], []) == []
        assert sweep_join_pairs([], [(Rect(0, 0, 1, 1), "a")]) == []

    def test_single_overlap(self):
        left = [(Rect(0, 0, 2, 2), "L")]
        right = [(Rect(1, 1, 3, 3), "R")]
        assert sweep_join_pairs(left, right) == [("L", "R")]

    def test_payload_order_is_left_first(self):
        # Regardless of which side the sweep picks first.
        left = [(Rect(5, 0, 6, 1), "L")]
        right = [(Rect(0, 0, 10, 1), "R")]
        assert sweep_join_pairs(left, right) == [("L", "R")]

    def test_touching_edges_count(self):
        left = [(Rect(0, 0, 1, 1), "L")]
        right = [(Rect(1, 0, 2, 1), "R")]
        assert sweep_join_pairs(left, right) == [("L", "R")]

    def test_y_disjoint_filtered(self):
        left = [(Rect(0, 0, 1, 1), "L")]
        right = [(Rect(0, 5, 1, 6), "R")]
        assert sweep_join_pairs(left, right) == []

    def test_returns_count(self):
        left = [(Rect(0, 0, 10, 10), i) for i in range(3)]
        right = [(Rect(1, 1, 2, 2), j) for j in range(2)]
        n = sweep_join(left, right, lambda a, b: None)
        assert n == 6

    def test_presorted_flag(self):
        left = sorted(
            [(Rect(0, 0, 2, 2), "a"), (Rect(1, 0, 3, 2), "b")],
            key=lambda it: it[0].xl,
        )
        right = sorted([(Rect(1.5, 0, 4, 2), "x")], key=lambda it: it[0].xl)
        out = []
        sweep_join(left, right, lambda a, b: out.append((a, b)), presorted=True)
        assert as_sets(out) == [("a", "x"), ("b", "x")]

    def test_duplicate_rectangles(self):
        left = [(Rect(0, 0, 1, 1), "a"), (Rect(0, 0, 1, 1), "b")]
        right = [(Rect(0, 0, 1, 1), "x")]
        assert as_sets(sweep_join_pairs(left, right)) == [("a", "x"), ("b", "x")]


class TestAgainstNaive:
    @given(rect_lists(), rect_lists())
    @settings(max_examples=200, deadline=None)
    def test_sweep_matches_naive(self, left, right):
        expected = as_sets(naive_join_pairs(left, right))
        got = as_sets(sweep_join_pairs(left, right))
        assert got == expected

    @given(rect_lists(), rect_lists())
    @settings(max_examples=100, deadline=None)
    def test_interval_tree_matches_naive(self, left, right):
        expected = as_sets(naive_join_pairs(left, right))
        out = []
        sweep_join_interval_tree(left, right, lambda a, b: out.append((a, b)))
        assert as_sets(out) == expected

    def test_interval_tree_payload_order_when_swapped(self):
        # Larger left side triggers the internal swap; payload order must
        # still be (left, right).
        left = [(Rect(i, 0, i + 1.5, 1), f"l{i}") for i in range(5)]
        right = [(Rect(2, 0, 3, 1), "r")]
        out = []
        sweep_join_interval_tree(left, right, lambda a, b: out.append((a, b)))
        assert all(a.startswith("l") and b == "r" for a, b in out)

    def test_no_duplicate_emissions(self):
        left = [(Rect(0, 0, 10, 10), i) for i in range(4)]
        right = [(Rect(2, 2, 3, 3), j) for j in range(4)]
        pairs = sweep_join_pairs(left, right)
        assert len(pairs) == len(set(pairs)) == 16
