"""Tests for the Hilbert and Z-order space-filling curves."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    CurveMapper,
    Rect,
    hilbert_d,
    hilbert_xy,
    morton_d,
    morton_xy,
)

cells = st.integers(min_value=0, max_value=(1 << 8) - 1)


class TestHilbert:
    def test_order_1_visits_all_cells(self):
        seen = {hilbert_d(x, y, order=1) for x in range(2) for y in range(2)}
        assert seen == {0, 1, 2, 3}

    def test_curve_is_continuous(self):
        # Successive curve positions are adjacent cells (the Hilbert property).
        order = 4
        side = 1 << order
        for d in range(side * side - 1):
            x1, y1 = hilbert_xy(d, order)
            x2, y2 = hilbert_xy(d + 1, order)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    @given(cells, cells)
    def test_roundtrip(self, x, y):
        d = hilbert_d(x, y, order=8)
        assert hilbert_xy(d, order=8) == (x, y)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            hilbert_d(1 << 8, 0, order=8)
        with pytest.raises(ValueError):
            hilbert_xy(1 << 16, order=8)

    def test_bijective_order_3(self):
        side = 1 << 3
        ds = {hilbert_d(x, y, 3) for x in range(side) for y in range(side)}
        assert ds == set(range(side * side))


class TestMorton:
    @given(cells, cells)
    def test_roundtrip(self, x, y):
        code = morton_d(x, y, order=8)
        assert morton_xy(code, order=8) == (x, y)

    def test_interleaving(self):
        # x=0b11, y=0b00 -> code 0b0101
        assert morton_d(3, 0, order=2) == 5
        assert morton_d(0, 3, order=2) == 10

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            morton_d(-1, 0, order=4)


class TestCurveMapper:
    def test_corners_map_in_range(self):
        mapper = CurveMapper(Rect(0, 0, 10, 10), order=8)
        side = 1 << 8
        for x, y in [(0, 0), (10, 10), (0, 10), (5, 5)]:
            assert 0 <= mapper.hilbert(x, y) < side * side

    def test_out_of_universe_clamped(self):
        mapper = CurveMapper(Rect(0, 0, 10, 10), order=8)
        assert mapper.hilbert(-5, -5) == mapper.hilbert(0, 0)
        assert mapper.hilbert(20, 20) == mapper.hilbert(10, 10)

    def test_degenerate_universe_padded(self):
        mapper = CurveMapper(Rect(1, 1, 1, 1), order=4)
        assert isinstance(mapper.hilbert(1, 1), int)

    def test_hilbert_of_rect_uses_center(self):
        mapper = CurveMapper(Rect(0, 0, 100, 100), order=8)
        r = Rect(10, 10, 30, 30)
        assert mapper.hilbert_of_rect(r) == mapper.hilbert(20, 20)

    def test_locality(self):
        # Nearby points should usually have nearer curve values than far
        # points; check a weak statistical version of the property.
        mapper = CurveMapper(Rect(0, 0, 1, 1), order=10)
        base = mapper.hilbert(0.3, 0.3)
        near = mapper.hilbert(0.301, 0.301)
        far = mapper.hilbert(0.9, 0.9)
        assert abs(base - near) < abs(base - far)

    def test_morton_also_available(self):
        mapper = CurveMapper(Rect(0, 0, 1, 1), order=6)
        assert mapper.morton(0.5, 0.5) >= 0
