"""Tests for the benchmark harness (scaling, caching, table rendering)."""

import pytest

from repro.bench import ResultTable, fresh_tiger, scaled_buffer_mb
from repro.bench.harness import MIN_POOL_PAGES, _cached_tuples
from repro.storage import PAGE_SIZE


class TestScaledBuffer:
    def test_proportional_above_floor(self):
        assert scaled_buffer_mb(24.0, scale=0.05) == pytest.approx(1.2)

    def test_floor_applies(self):
        floor_mb = MIN_POOL_PAGES * PAGE_SIZE / (1024 * 1024)
        assert scaled_buffer_mb(2.0, scale=0.001) == pytest.approx(floor_mb)

    def test_monotone_in_paper_mb(self):
        sizes = [scaled_buffer_mb(mb, scale=0.05) for mb in (2.0, 8.0, 24.0)]
        assert sizes == sorted(sizes)


class TestCachedTuples:
    def test_same_key_same_object(self):
        a = _cached_tuples("rail", 0.001, False)
        b = _cached_tuples("rail", 0.001, False)
        assert a is b

    def test_clustered_variant_differs_in_order(self):
        plain = _cached_tuples("rail", 0.002, False)
        clustered = _cached_tuples("rail", 0.002, True)
        assert sorted(map(repr, plain)) == sorted(map(repr, clustered))
        assert list(plain) != list(clustered)


class TestFreshTiger:
    def test_cold_start(self):
        db, rels = fresh_tiger(8.0, scale=0.0005, include=("rail",))
        assert db.pool.hits == 0 and db.pool.misses == 0
        assert db.pool.resident_pages == 0
        assert len(rels["rail"]) > 0

    def test_include_controls_relations(self):
        _db, rels = fresh_tiger(8.0, scale=0.0005, include=("road",))
        assert set(rels) == {"road"}


class TestResultTable:
    def test_render_contains_everything(self):
        t = ResultTable("My Title", ["a", "bb"])
        t.add(1, 2.5)
        text = t.render()
        assert "My Title" in text
        assert "a" in text and "bb" in text
        assert "2.50" in text

    def test_row_arity_checked(self):
        t = ResultTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_empty_table_renders(self):
        assert "hdr" in ResultTable("t", ["hdr"]).render()

    def test_emit_writes_file(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        t = ResultTable("t", ["a"])
        t.add(42)
        t.emit("out.txt")
        assert (tmp_path / "out.txt").read_text().startswith("t\n")
