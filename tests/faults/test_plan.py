"""Fault plans: deterministic compilation, stacking, and (de)serialisation."""

import pytest

from repro.faults import (
    NAMED_SPECS,
    FaultPlan,
    FaultSpec,
    WorkerFaults,
    load_plan,
)


class TestCompilation:
    def test_same_inputs_compile_identically(self):
        spec = NAMED_SPECS["combined"]
        a = FaultPlan.compile(spec, seed=42, num_pairs=8)
        b = FaultPlan.compile(spec, seed=42, num_pairs=8)
        assert a == b
        assert a.worker_faults == b.worker_faults
        assert a.torn_frames == b.torn_frames
        assert a.write_errors == b.write_errors

    def test_seed_varies_the_schedule(self):
        spec = FaultSpec(disk_read_errors=5, worker_crashes=2, torn_frames=2)
        plans = [
            FaultPlan.compile(spec, seed=s, num_pairs=16) for s in range(20)
        ]
        # 20 seeds over a 16-pair domain cannot all collide.
        assert any(plan != plans[0] for plan in plans[1:])

    def test_attempts_stack_per_pair(self):
        # Five read errors on a one-pair domain must land on attempts
        # 0..4 of pair 0 — attempt 0 first, so a bounded retry budget
        # always clears the plan.
        plan = FaultPlan.compile(
            FaultSpec(disk_read_errors=5), seed=3, num_pairs=1
        )
        assert plan.faults_for_pair(0).read_error_attempts == (0, 1, 2, 3, 4)
        assert plan.faults_for_pair(1) is None

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.compile(FaultSpec(), seed=0, num_pairs=0)

    def test_total_faults(self):
        assert FaultSpec().total_faults == 0
        assert NAMED_SPECS["combined"].total_faults == 6

    def test_resilience_drill_plans_compile(self):
        # The serve-chaos drills: one stall pinned to a single pair's
        # attempt 0, and one at-rest cache corruption ordinal (applied by
        # the chaos harness, never by a worker).
        stall = load_plan(
            "deadline_stall", seed=3, num_pairs=8, hang_s=2.5
        )
        assert stall.spec.hangs == 1
        assert stall.max_hang_s == 2.5
        hangs = [
            (pair, wf.hang_attempts)
            for pair, wf in sorted(stall.worker_faults.items())
            if wf.hang_attempts
        ]
        assert len(hangs) == 1
        assert hangs[0][1] == (0,)  # attempt 0: fires on first dispatch

        scrub = load_plan("scrub_corruption", seed=3, num_pairs=8)
        assert scrub.spec.cache_corruptions == 1
        assert len(scrub.cache_corruption_ordinals) == 1
        assert not scrub.worker_faults  # nothing fires inside a worker
        assert FaultPlan.from_dict(scrub.to_dict()) == scrub

    def test_cache_corruptions_count_as_faults(self):
        assert FaultSpec(cache_corruptions=2).total_faults == 2

    def test_max_hang_s(self):
        quiet = FaultPlan.compile(FaultSpec(slow_tasks=1), seed=0, num_pairs=4)
        assert quiet.max_hang_s == 0.0
        hangy = FaultPlan.compile(
            FaultSpec(hangs=1, hang_s=9.5), seed=0, num_pairs=4
        )
        assert hangy.max_hang_s == 9.5


class TestDiskFullPoints:
    def test_points_compile_deterministically(self):
        spec = NAMED_SPECS["disk_full"]
        a = FaultPlan.compile(spec, seed=7, num_pairs=8)
        b = FaultPlan.compile(spec, seed=7, num_pairs=8)
        assert a.disk_full_points == b.disk_full_points
        assert len(a.disk_full_points) == spec.disk_full == 2

    def test_points_stay_in_category_bounds(self):
        for seed in range(20):
            plan = FaultPlan.compile(
                FaultSpec(disk_full=4), seed=seed, num_pairs=8
            )
            for category, ordinal in plan.disk_full_points:
                assert category in ("spill", "checkpoint")
                bound = 1 << 12 if category == "spill" else 1 << 10
                assert 0 <= ordinal < bound

    def test_adding_disk_full_never_perturbs_other_kinds(self):
        # Disk-full points draw after every earlier fault kind, so a spec
        # that grows a disk_full count keeps the same crash/hang/tear
        # schedule under one seed — committed plans stay stable.
        base = NAMED_SPECS["combined"]
        grown = FaultSpec(
            **{**base.to_dict(), "disk_full": 3}
        )
        a = FaultPlan.compile(base, seed=13, num_pairs=8)
        b = FaultPlan.compile(grown, seed=13, num_pairs=8)
        assert a.worker_faults == b.worker_faults
        assert a.torn_frames == b.torn_frames
        assert a.write_errors == b.write_errors
        assert a.coordinator_kill_ordinals == b.coordinator_kill_ordinals
        assert not a.disk_full_points
        assert len(b.disk_full_points) == 3

    def test_committed_drill_plan_matches_its_compiled_form(self):
        # benchmarks/faultplans/disk_full.json is exactly what its
        # (spec, seed, domain) triple compiles to — nobody hand-edited
        # the artifact into something unreproducible.
        import json
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "faultplans" / "disk_full.json"
        )
        committed = json.loads(path.read_text())
        plan = FaultPlan.compile(
            NAMED_SPECS["disk_full"],
            seed=committed["seed"], num_pairs=committed["num_pairs"],
        )
        assert plan.to_dict() == committed
        # The committed points are spill-only, so the drill's injections
        # fire even without a checkpoint directory.
        assert plan.disk_full_points
        assert all(c == "spill" for c, _ in plan.disk_full_points)

    def test_round_trip_preserves_points(self, tmp_path):
        plan = FaultPlan.compile(NAMED_SPECS["disk_full"], seed=5, num_pairs=8)
        path = plan.save(tmp_path / "df.json")
        assert FaultPlan.load(path).disk_full_points == plan.disk_full_points


class TestSerialisation:
    def test_dict_round_trip_recompiles_equal(self):
        plan = FaultPlan.compile(NAMED_SPECS["combined"], seed=11, num_pairs=6)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan.compile(NAMED_SPECS["disk_error"], seed=4, num_pairs=8)
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_unknown_spec_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"disk_read_errors": 1, "cosmic_rays": 3})


class TestLoadPlan:
    def test_named_plans_resolve(self):
        for name in NAMED_SPECS:
            plan = load_plan(name, seed=1, num_pairs=4)
            assert plan.spec == NAMED_SPECS[name]
            assert plan.num_pairs == 4

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(ValueError, match="combined"):
            load_plan("thermonuclear")

    def test_json_file_ignores_cli_seed(self, tmp_path):
        committed = FaultPlan.compile(
            NAMED_SPECS["worker_crash"], seed=99, num_pairs=12
        )
        path = committed.save(tmp_path / "p.json")
        loaded = load_plan(str(path), seed=0, num_pairs=4)
        assert loaded == committed

    def test_hang_s_override_recompiles(self, tmp_path):
        path = FaultPlan.compile(
            NAMED_SPECS["hang"], seed=2, num_pairs=8
        ).save(tmp_path / "hang.json")
        fast = load_plan(str(path), hang_s=1.25)
        assert fast.spec.hangs == 1
        assert fast.max_hang_s == 1.25
        # Only the durations changed; the schedule (which pair, which
        # attempt) is pinned by the seed alone.
        slow = load_plan(str(path))
        assert set(fast.worker_faults) == set(slow.worker_faults)

    def test_worker_faults_are_picklable(self):
        import pickle

        wf = WorkerFaults(read_error_attempts=(0, 1), crash_attempts=(2,))
        assert pickle.loads(pickle.dumps(wf)) == wf
        assert wf.total_points == 3
