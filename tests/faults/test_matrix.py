"""The fault matrix: every failure mode x several plan seeds, one invariant.

For every fault plan that stays within the retry budget, the process
backend must produce the exact sorted feature-id pair set of a fault-free
serial run — recovery is only recovery if the answer is byte-identical.
"""

import pytest

from repro import intersects
from repro.data import generate_hydrography, generate_roads
from repro.faults import load_plan
from repro.parallel import ProcessPBSM, serial_feature_pairs

SCALE = 0.001
NUM_PARTITIONS = 8
WORKERS = 2
RETRIES = 3

# Plans with hangs need a timeout that undercuts the injected sleep;
# everything else runs without one so the timeout machinery stays cold.
HANG_S = 3.0
TIMEOUT_S = 1.0

MATRIX = ["disk_error", "torn_frame", "worker_crash", "slow", "combined"]


@pytest.fixture(scope="module")
def workload():
    tuples_r = list(generate_roads(scale=SCALE))
    tuples_s = list(generate_hydrography(scale=SCALE))
    expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)
    assert expected, "fault matrix needs a non-trivial workload"
    return tuples_r, tuples_s, expected


def _run_under(plan_name, plan_seed, workload):
    tuples_r, tuples_s, expected = workload
    has_hangs = plan_name in ("hang", "combined")
    plan = load_plan(
        plan_name,
        seed=plan_seed,
        num_pairs=NUM_PARTITIONS,
        hang_s=HANG_S if has_hangs else None,
    )
    engine = ProcessPBSM(
        WORKERS,
        num_partitions=NUM_PARTITIONS,
        fault_plan=plan,
        task_timeout_s=TIMEOUT_S if has_hangs else None,
        max_task_retries=RETRIES,
    )
    result = engine.run(tuples_r, tuples_s, intersects)
    assert result.pairs == expected, (
        f"plan {plan_name!r} seed {plan_seed} changed the join result"
    )
    return result


class TestFaultMatrix:
    @pytest.mark.parametrize("plan_name", MATRIX)
    @pytest.mark.parametrize("plan_seed", [0, 1, 2])
    def test_survives_byte_identical(self, plan_name, plan_seed, workload):
        result = _run_under(plan_name, plan_seed, workload)
        # Every planned fault was at least registered with the run.
        assert any(
            k.startswith("injected_") for k in result.fault_summary
        ), result.fault_summary

    def test_none_plan_is_a_clean_run(self, workload):
        result = _run_under("none", 0, workload)
        assert result.fault_summary == {}
        assert result.degraded_pairs == []
        assert all(t.attempts == 1 and not t.degraded for t in result.tasks)

    def test_replay_is_deterministic(self, workload):
        # Same plan, same data: the recovery path may differ in timing but
        # the answer and the degraded-pair set must replay exactly.
        first = _run_under("torn_frame", 1, workload)
        second = _run_under("torn_frame", 1, workload)
        assert first.pairs == second.pairs
        assert first.degraded_pairs == second.degraded_pairs
        assert first.fault_summary.get("quarantined") == second.fault_summary.get("quarantined")
