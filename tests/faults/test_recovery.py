"""Recovery mechanics: retries, exhaustion, quarantine, degraded rebuilds."""

import pickle

import pytest

from repro import intersects
from repro.data import generate_hydrography, generate_roads
from repro.faults import FaultPlan, FaultSpec, TornFrame, WorkerFaults
from repro.parallel import ProcessPBSM, WorkerTaskError, parallel_join, serial_feature_pairs

SCALE = 0.001


@pytest.fixture(scope="module")
def workload():
    tuples_r = list(generate_roads(scale=SCALE))
    tuples_s = list(generate_hydrography(scale=SCALE))
    expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)
    return tuples_r, tuples_s, expected


def _always_failing_plan():
    # Read errors on attempts 0..3 of the only pair: a retry budget of 3
    # (four dispatches) can never clear them, forcing the degraded path.
    return FaultPlan(
        seed=0,
        num_pairs=1,
        spec=FaultSpec(disk_read_errors=4),
        worker_faults={0: WorkerFaults(read_error_attempts=(0, 1, 2, 3))},
    )


class TestRetryExhaustion:
    def test_degraded_rebuild_preserves_the_answer(self, workload):
        tuples_r, tuples_s, expected = workload
        result = ProcessPBSM(
            2, num_partitions=1,
            fault_plan=_always_failing_plan(), max_task_retries=3,
        ).run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert result.degraded_pairs == [0]
        summary = result.fault_summary
        assert summary["task_failures"] == 4
        assert summary["retries"] == 3
        assert summary["retry_exhausted"] == 1
        assert summary["degraded"] == 1
        assert result.tasks[0].degraded is True

    def test_without_degradation_the_error_carries_context(self, workload):
        tuples_r, tuples_s, _ = workload
        engine = ProcessPBSM(
            2, num_partitions=1,
            fault_plan=_always_failing_plan(), max_task_retries=1,
            degrade_on_failure=False,
        )
        with pytest.raises(WorkerTaskError) as info:
            engine.run(tuples_r, tuples_s, intersects)
        err = info.value
        assert err.pair_index == 0
        assert err.corruption is False
        assert err.cause_type == "InjectedFaultError"
        assert "partition pair 0" in str(err)
        assert "attempt" in str(err)


class TestQuarantine:
    def test_corruption_skips_retries_and_degrades(self, workload):
        tuples_r, tuples_s, expected = workload
        plan = FaultPlan(
            seed=0,
            num_pairs=4,
            spec=FaultSpec(torn_frames=1),
            torn_frames=(TornFrame(side="r", partition=2, frame=0),),
        )
        result = ProcessPBSM(
            2, num_partitions=4, fault_plan=plan, max_task_retries=3,
        ).run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        summary = result.fault_summary
        assert summary["quarantined"] == 1
        assert summary["degraded"] == 1
        # Corruption is not transient: no retry may be burned on it.
        assert "retries" not in summary
        assert len(result.degraded_pairs) == 1

    def test_quarantine_without_degradation_raises_corruption(self, workload):
        tuples_r, tuples_s, _ = workload
        plan = FaultPlan(
            seed=0,
            num_pairs=4,
            spec=FaultSpec(torn_frames=1),
            torn_frames=(TornFrame(side="s", partition=1, frame=3),),
        )
        engine = ProcessPBSM(
            2, num_partitions=4, fault_plan=plan, degrade_on_failure=False,
        )
        with pytest.raises(WorkerTaskError) as info:
            engine.run(tuples_r, tuples_s, intersects)
        assert info.value.corruption is True


class TestWorkerTaskError:
    def test_pickle_round_trip(self):
        err = WorkerTaskError(
            pair_index=5, attempt=2, worker_pid=4242,
            cause_type="InjectedFaultError", cause_message="injected",
            traceback_text="Traceback ...", corruption=True,
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, WorkerTaskError)
        assert clone.pair_index == 5
        assert clone.attempt == 2
        assert clone.worker_pid == 4242
        assert clone.corruption is True
        assert clone.traceback_text == "Traceback ..."
        assert str(clone) == str(err)

    def test_message_names_pair_attempt_and_worker(self):
        err = WorkerTaskError(
            pair_index=3, attempt=1, worker_pid=0,
            cause_type="OSError", cause_message="disk on fire",
        )
        text = str(err)
        assert "partition pair 3" in text
        assert "attempt 1" in text
        assert "<unknown>" in text  # pid 0 = failure before a worker reported
        assert "disk on fire" in text


class TestConfiguration:
    def test_fault_plan_requires_the_process_backend(self):
        plan = FaultPlan(seed=0, num_pairs=1, spec=FaultSpec())
        for backend in ("serial", "simulated"):
            with pytest.raises(ValueError, match="process backend"):
                parallel_join([], [], intersects, backend=backend,
                              fault_plan=plan)

    def test_recovery_knobs_validated(self):
        with pytest.raises(ValueError):
            ProcessPBSM(2, task_timeout_s=0)
        with pytest.raises(ValueError):
            ProcessPBSM(2, task_timeout_s=-1.5)
        with pytest.raises(ValueError):
            ProcessPBSM(2, max_task_retries=-1)
