"""Spill-file integrity: the CRC32 framing catches every kind of damage."""

import pickle
import struct

import pytest

from repro.faults import tear_frame
from repro.storage import SpillCorruptionError, StorageError
from repro.storage.spill import (
    FRAME_HEADER_SIZE,
    MAX_RECORD_BYTES,
    SpillWriter,
    read_spill,
    read_spill_all,
    write_spill,
)

RECORDS = [b"alpha", b"", b"gamma" * 100, b"\x00\xff" * 7]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "part.spill"
        assert write_spill(path, RECORDS) == len(RECORDS)
        assert read_spill_all(path) == RECORDS

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.spill"
        assert write_spill(path, []) == 0
        assert read_spill_all(path) == []

    def test_writer_counts_and_is_reentrant_to_close(self, tmp_path):
        path = tmp_path / "w.spill"
        with SpillWriter(path) as writer:
            writer.append(b"one")
            writer.append(b"two")
            assert writer.count == 2
        writer.close()  # idempotent
        assert read_spill_all(path) == [b"one", b"two"]

    def test_oversized_record_rejected_at_write(self, tmp_path):
        writer = SpillWriter(tmp_path / "big.spill")

        class HugeBytes(bytes):
            def __len__(self):
                return MAX_RECORD_BYTES + 1

        with pytest.raises(ValueError):
            writer.append(HugeBytes())
        writer.close()


class TestCorruptionDetection:
    def test_torn_payload_byte(self, tmp_path):
        path = tmp_path / "torn.spill"
        write_spill(path, RECORDS)
        torn = tear_frame(path, 2)
        assert torn == 2
        reader = read_spill(path)
        assert next(reader) == RECORDS[0]
        assert next(reader) == RECORDS[1]
        with pytest.raises(SpillCorruptionError) as info:
            next(reader)
        err = info.value
        assert err.path == str(path)
        assert err.frame_index == 2
        # Frame 2 starts after two framed records.
        assert err.offset == sum(
            FRAME_HEADER_SIZE + len(r) for r in RECORDS[:2]
        )
        assert "checksum mismatch" in str(err)

    def test_torn_empty_payload_flips_the_crc(self, tmp_path):
        # RECORDS[1] is b"": there is no payload byte to flip, so the
        # injector flips the stored CRC instead — still caught.
        path = tmp_path / "empty_frame.spill"
        write_spill(path, RECORDS)
        assert tear_frame(path, 1) == 1
        with pytest.raises(SpillCorruptionError) as info:
            read_spill_all(path)
        assert info.value.frame_index == 1

    def test_frame_index_wraps_modulo_record_count(self, tmp_path):
        path = tmp_path / "wrap.spill"
        write_spill(path, RECORDS)
        assert tear_frame(path, len(RECORDS) + 1) == 1

    def test_tearing_an_empty_file_is_a_noop(self, tmp_path):
        path = tmp_path / "none.spill"
        write_spill(path, [])
        assert tear_frame(path, 0) == -1
        assert read_spill_all(path) == []

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.spill"
        write_spill(path, [b"0123456789"])
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(SpillCorruptionError, match="truncated record"):
            read_spill_all(path)

    def test_torn_header(self, tmp_path):
        path = tmp_path / "header.spill"
        write_spill(path, [b"full frame"])
        with path.open("ab") as fh:
            fh.write(b"\x07\x00\x00")  # 3 of 8 header bytes
        reader = read_spill(path)
        assert next(reader) == b"full frame"
        with pytest.raises(SpillCorruptionError, match="torn frame header"):
            next(reader)

    def test_implausible_length_prefix(self, tmp_path):
        path = tmp_path / "len.spill"
        path.write_bytes(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
        with pytest.raises(SpillCorruptionError, match="corrupt frame length"):
            read_spill_all(path)


class TestErrorType:
    def test_is_a_value_error_and_a_storage_error(self, tmp_path):
        path = tmp_path / "t.spill"
        write_spill(path, [b"x"])
        tear_frame(path, 0)
        with pytest.raises(ValueError):
            read_spill_all(path)
        with pytest.raises(StorageError):
            read_spill_all(path)

    def test_pickles_with_location_intact(self):
        err = SpillCorruptionError(
            "boom", path="/tmp/p.spill", frame_index=7, offset=123
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SpillCorruptionError)
        assert (clone.path, clone.frame_index, clone.offset) == (
            "/tmp/p.spill", 7, 123
        )
        assert str(clone) == "boom"


class TestTornTailTruncate:
    """Resume-side read mode: damage at EOF ends the log, mid-log raises."""

    def test_torn_tail_yields_the_intact_prefix(self, tmp_path):
        from repro.faults import tear_tail
        from repro.storage.spill import TORN_TAIL_TRUNCATE

        path = tmp_path / "t.spill"
        write_spill(path, RECORDS)
        assert tear_tail(path)
        seen = []
        records = read_spill_all(
            path, torn_tail=TORN_TAIL_TRUNCATE, on_torn_tail=seen.append
        )
        assert records == RECORDS[:-1]
        assert len(seen) == 1 and isinstance(seen[0], SpillCorruptionError)

    def test_truncated_file_yields_the_intact_prefix(self, tmp_path):
        from repro.storage.spill import TORN_TAIL_TRUNCATE

        path = tmp_path / "t.spill"
        write_spill(path, RECORDS)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        records = read_spill_all(path, torn_tail=TORN_TAIL_TRUNCATE)
        assert records == RECORDS[:-1]

    def test_mid_log_damage_still_raises(self, tmp_path):
        from repro.storage.spill import TORN_TAIL_TRUNCATE

        path = tmp_path / "t.spill"
        write_spill(path, RECORDS)
        tear_frame(path, 0)  # later intact frames: not a torn tail
        with pytest.raises(SpillCorruptionError):
            read_spill_all(path, torn_tail=TORN_TAIL_TRUNCATE)

    def test_default_mode_raises_even_at_the_tail(self, tmp_path):
        from repro.faults import tear_tail

        path = tmp_path / "t.spill"
        write_spill(path, RECORDS)
        tear_tail(path)
        with pytest.raises(SpillCorruptionError):
            read_spill_all(path)

    def test_unknown_mode_is_rejected(self, tmp_path):
        path = tmp_path / "t.spill"
        write_spill(path, RECORDS)
        with pytest.raises(ValueError):
            read_spill_all(path, torn_tail="maybe")


class TestAtomicWriter:
    def test_atomic_writer_stages_then_renames(self, tmp_path):
        path = tmp_path / "part.spill"
        writer = SpillWriter(path, atomic=True)
        writer.append(b"alpha")
        assert not path.exists()
        assert path.with_name("part.spill.tmp").exists()
        writer.close()
        assert path.exists()
        assert not path.with_name("part.spill.tmp").exists()
        assert read_spill_all(path) == [b"alpha"]

    def test_context_manager_exception_aborts(self, tmp_path):
        path = tmp_path / "part.spill"
        with pytest.raises(RuntimeError):
            with SpillWriter(path, atomic=True) as writer:
                writer.append(b"alpha")
                raise RuntimeError("partitioning failed")
        assert not path.exists()
        assert not path.with_name("part.spill.tmp").exists()

    def test_abort_removes_non_atomic_partial_too(self, tmp_path):
        path = tmp_path / "part.spill"
        writer = SpillWriter(path)
        writer.append(b"alpha")
        writer.abort()
        assert not path.exists()

    def test_sweep_orphan_spills(self, tmp_path):
        from repro.storage.spill import sweep_orphan_spills

        sealed = tmp_path / "spills" / "r_0.kp"
        write_spill(sealed, [b"keep me"])
        orphan = tmp_path / "spills" / "r_1.kp.tmp"
        orphan.write_bytes(b"half")
        nested = tmp_path / "spills" / "deep" / "s_2.tup.tmp"
        nested.parent.mkdir()
        nested.write_bytes(b"half")
        removed = sweep_orphan_spills(tmp_path)
        assert set(removed) == {str(orphan), str(nested)}
        assert sealed.exists() and not orphan.exists() and not nested.exists()

    def test_sweep_of_missing_directory_is_empty(self, tmp_path):
        from repro.storage.spill import sweep_orphan_spills

        assert sweep_orphan_spills(tmp_path / "nope") == []
