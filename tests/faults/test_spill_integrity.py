"""Spill-file integrity: the CRC32 framing catches every kind of damage."""

import pickle
import struct

import pytest

from repro.faults import tear_frame
from repro.storage import SpillCorruptionError, StorageError
from repro.storage.spill import (
    FRAME_HEADER_SIZE,
    MAX_RECORD_BYTES,
    SpillWriter,
    read_spill,
    read_spill_all,
    write_spill,
)

RECORDS = [b"alpha", b"", b"gamma" * 100, b"\x00\xff" * 7]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "part.spill"
        assert write_spill(path, RECORDS) == len(RECORDS)
        assert read_spill_all(path) == RECORDS

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.spill"
        assert write_spill(path, []) == 0
        assert read_spill_all(path) == []

    def test_writer_counts_and_is_reentrant_to_close(self, tmp_path):
        path = tmp_path / "w.spill"
        with SpillWriter(path) as writer:
            writer.append(b"one")
            writer.append(b"two")
            assert writer.count == 2
        writer.close()  # idempotent
        assert read_spill_all(path) == [b"one", b"two"]

    def test_oversized_record_rejected_at_write(self, tmp_path):
        writer = SpillWriter(tmp_path / "big.spill")

        class HugeBytes(bytes):
            def __len__(self):
                return MAX_RECORD_BYTES + 1

        with pytest.raises(ValueError):
            writer.append(HugeBytes())
        writer.close()


class TestCorruptionDetection:
    def test_torn_payload_byte(self, tmp_path):
        path = tmp_path / "torn.spill"
        write_spill(path, RECORDS)
        torn = tear_frame(path, 2)
        assert torn == 2
        reader = read_spill(path)
        assert next(reader) == RECORDS[0]
        assert next(reader) == RECORDS[1]
        with pytest.raises(SpillCorruptionError) as info:
            next(reader)
        err = info.value
        assert err.path == str(path)
        assert err.frame_index == 2
        # Frame 2 starts after two framed records.
        assert err.offset == sum(
            FRAME_HEADER_SIZE + len(r) for r in RECORDS[:2]
        )
        assert "checksum mismatch" in str(err)

    def test_torn_empty_payload_flips_the_crc(self, tmp_path):
        # RECORDS[1] is b"": there is no payload byte to flip, so the
        # injector flips the stored CRC instead — still caught.
        path = tmp_path / "empty_frame.spill"
        write_spill(path, RECORDS)
        assert tear_frame(path, 1) == 1
        with pytest.raises(SpillCorruptionError) as info:
            read_spill_all(path)
        assert info.value.frame_index == 1

    def test_frame_index_wraps_modulo_record_count(self, tmp_path):
        path = tmp_path / "wrap.spill"
        write_spill(path, RECORDS)
        assert tear_frame(path, len(RECORDS) + 1) == 1

    def test_tearing_an_empty_file_is_a_noop(self, tmp_path):
        path = tmp_path / "none.spill"
        write_spill(path, [])
        assert tear_frame(path, 0) == -1
        assert read_spill_all(path) == []

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.spill"
        write_spill(path, [b"0123456789"])
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(SpillCorruptionError, match="truncated record"):
            read_spill_all(path)

    def test_torn_header(self, tmp_path):
        path = tmp_path / "header.spill"
        write_spill(path, [b"full frame"])
        with path.open("ab") as fh:
            fh.write(b"\x07\x00\x00")  # 3 of 8 header bytes
        reader = read_spill(path)
        assert next(reader) == b"full frame"
        with pytest.raises(SpillCorruptionError, match="torn frame header"):
            next(reader)

    def test_implausible_length_prefix(self, tmp_path):
        path = tmp_path / "len.spill"
        path.write_bytes(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
        with pytest.raises(SpillCorruptionError, match="corrupt frame length"):
            read_spill_all(path)


class TestErrorType:
    def test_is_a_value_error_and_a_storage_error(self, tmp_path):
        path = tmp_path / "t.spill"
        write_spill(path, [b"x"])
        tear_frame(path, 0)
        with pytest.raises(ValueError):
            read_spill_all(path)
        with pytest.raises(StorageError):
            read_spill_all(path)

    def test_pickles_with_location_intact(self):
        err = SpillCorruptionError(
            "boom", path="/tmp/p.spill", frame_index=7, offset=123
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SpillCorruptionError)
        assert (clone.path, clone.frame_index, clone.offset) == (
            "/tmp/p.spill", 7, 123
        )
        assert str(clone) == "boom"
