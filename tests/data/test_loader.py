"""Tests for dataset loading and spatial clustering."""

from repro.data import (
    generate_rail,
    load_relation,
    make_sequoia_datasets,
    make_tiger_datasets,
)
from repro.geometry import CurveMapper, Rect


class TestLoadRelation:
    def test_unclustered_preserves_generator_order(self, db):
        tuples = list(generate_rail(scale=0.002))
        rel = load_relation(db, "rail", tuples)
        assert [t for _o, t in rel.scan()] == tuples

    def test_clustered_is_hilbert_order(self, db):
        tuples = list(generate_rail(scale=0.002))
        rel = load_relation(db, "rail", tuples, clustered=True)
        loaded = [t for _o, t in rel.scan()]
        assert sorted(map(repr, loaded)) == sorted(map(repr, tuples))
        universe = Rect.union_all(t.mbr for t in tuples)
        mapper = CurveMapper(universe)
        keys = [mapper.hilbert_of_rect(t.mbr) for t in loaded]
        assert keys == sorted(keys)

    def test_empty_load(self, db):
        rel = load_relation(db, "empty", [])
        assert len(rel) == 0


class TestDatasetBundles:
    def test_tiger_bundle(self, db):
        rels = make_tiger_datasets(db, scale=0.0005)
        assert set(rels) == {"road", "hydro", "rail"}
        assert len(rels["road"]) > len(rels["hydro"]) > len(rels["rail"])

    def test_tiger_include_filter(self, db):
        rels = make_tiger_datasets(db, scale=0.0005, include=("rail",))
        assert set(rels) == {"rail"}

    def test_sequoia_bundle(self, db):
        rels = make_sequoia_datasets(db, scale=0.001)
        assert set(rels) == {"polygon", "island"}
        assert len(rels["polygon"]) > 0
        assert len(rels["island"]) > 0

    def test_catalog_stats_populated(self, db):
        rels = make_tiger_datasets(db, scale=0.0005, include=("road",))
        road = rels["road"]
        assert road.catalog.cardinality == len(road)
        assert road.universe.area > 0
        assert road.catalog.avg_points > 2
