"""Tests for the synthetic TIGER and Sequoia data generators."""

import pytest

from repro.data import (
    CALIFORNIA,
    WISCONSIN,
    generate_hydrography,
    generate_islands,
    generate_landuse_polygons,
    generate_rail,
    generate_roads,
    scaled_counts,
)
from repro.data.tiger import (
    FULL_HYDRO_COUNT,
    FULL_RAIL_COUNT,
    FULL_ROAD_COUNT,
    HYDRO_AVG_POINTS,
    ROAD_AVG_POINTS,
)
from repro.geometry import Polygon, Polyline


class TestScaledCounts:
    def test_full_scale(self):
        assert scaled_counts(1.0) == (FULL_ROAD_COUNT, FULL_HYDRO_COUNT, FULL_RAIL_COUNT)

    def test_ratios_preserved(self):
        roads, hydro, rail = scaled_counts(0.01)
        assert roads / hydro == pytest.approx(FULL_ROAD_COUNT / FULL_HYDRO_COUNT, rel=0.05)
        assert roads / rail == pytest.approx(FULL_ROAD_COUNT / FULL_RAIL_COUNT, rel=0.05)

    def test_minimum_one(self):
        assert scaled_counts(1e-9) == (1, 1, 1)

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            scaled_counts(0)


class TestTigerGenerators:
    def test_deterministic(self):
        a = [t.geom.points for t in generate_roads(scale=0.0005)]
        b = [t.geom.points for t in generate_roads(scale=0.0005)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [t.geom.points for t in generate_roads(scale=0.0005, seed=1)]
        b = [t.geom.points for t in generate_roads(scale=0.0005, seed=2)]
        assert a != b

    def test_all_polylines_valid(self):
        for t in generate_roads(scale=0.0005):
            assert isinstance(t.geom, Polyline)
            assert t.geom.num_points >= 2

    def test_within_universe(self):
        for gen in (generate_roads, generate_hydrography, generate_rail):
            for t in gen(scale=0.0003):
                assert WISCONSIN.contains(t.mbr)

    def test_avg_points_near_target(self):
        roads = list(generate_roads(scale=0.003))
        avg = sum(t.num_points for t in roads) / len(roads)
        assert avg == pytest.approx(ROAD_AVG_POINTS, rel=0.25)
        hydro = list(generate_hydrography(scale=0.01))
        avg_h = sum(t.num_points for t in hydro) / len(hydro)
        assert avg_h == pytest.approx(HYDRO_AVG_POINTS, rel=0.25)

    def test_hydro_longer_than_rail(self):
        hydro = list(generate_hydrography(scale=0.005))
        rail = list(generate_rail(scale=0.05))
        avg_h = sum(t.num_points for t in hydro) / len(hydro)
        avg_r = sum(t.num_points for t in rail) / len(rail)
        assert avg_h > avg_r

    def test_data_is_spatially_skewed(self):
        # The clustered distribution should put far more mass in some
        # quadrants than others (the paper's Figure 2 motivation).
        roads = list(generate_roads(scale=0.005))
        cx = (WISCONSIN.xl + WISCONSIN.xu) / 2
        cy = (WISCONSIN.yl + WISCONSIN.yu) / 2
        quadrants = [0, 0, 0, 0]
        for t in roads:
            x, y = t.mbr.center
            quadrants[(x > cx) + 2 * (y > cy)] += 1
        assert max(quadrants) > 2 * min(quadrants)

    def test_names_and_categories(self):
        t = next(iter(generate_rail(scale=0.001)))
        assert t.name.startswith("rail-")
        assert t.category == 3


class TestSequoiaGenerators:
    def test_deterministic(self):
        a = [t.geom.shell for t in generate_landuse_polygons(scale=0.001)]
        b = [t.geom.shell for t in generate_landuse_polygons(scale=0.001)]
        assert a == b

    def test_polygons_valid(self):
        for t in generate_landuse_polygons(scale=0.001):
            assert isinstance(t.geom, Polygon)
            assert t.geom.area() > 0

    def test_some_polygons_have_holes(self):
        polys = list(generate_landuse_polygons(scale=0.01))
        with_holes = sum(1 for t in polys if t.geom.holes)
        assert 0 < with_holes < len(polys)
        # Around the configured 10%.
        assert with_holes / len(polys) == pytest.approx(0.10, abs=0.06)

    def test_islands_smaller_than_polygons(self):
        polys = list(generate_landuse_polygons(scale=0.002))
        islands = list(generate_islands(scale=0.002))
        avg_poly = sum(t.geom.area() for t in polys) / len(polys)
        avg_isl = sum(t.geom.area() for t in islands) / len(islands)
        assert avg_isl < avg_poly / 2

    def test_most_islands_contained_in_some_polygon(self):
        polys = [t.geom for t in generate_landuse_polygons(scale=0.002)]
        islands = [t.geom for t in generate_islands(scale=0.002)]
        contained = 0
        for isl in islands:
            if any(p.mbr.contains(isl.mbr) and p.contains(isl) for p in polys):
                contained += 1
        assert contained / len(islands) > 0.5

    def test_some_islands_not_contained(self):
        polys = [t.geom for t in generate_landuse_polygons(scale=0.002)]
        islands = [t.geom for t in generate_islands(scale=0.002)]
        stray = sum(
            1
            for isl in islands
            if not any(p.mbr.contains(isl.mbr) and p.contains(isl) for p in polys)
        )
        assert stray > 0

    def test_within_universe_roughly(self):
        # Blob jitter can poke slightly past the nominal box; allow margin.
        margin = 1.0
        from repro.geometry import Rect

        padded = Rect(
            CALIFORNIA.xl - margin,
            CALIFORNIA.yl - margin,
            CALIFORNIA.xu + margin,
            CALIFORNIA.yu + margin,
        )
        for t in generate_landuse_polygons(scale=0.001):
            assert padded.contains(t.mbr)
