"""Tests for R*-tree node page serialisation."""

import pytest

from repro.geometry import Rect
from repro.index import NODE_CAPACITY, Node
from repro.index.node import pack_meta, pack_node, unpack_meta, unpack_node
from repro.storage import PAGE_SIZE


def page():
    return bytearray(PAGE_SIZE)


class TestNodeRoundtrip:
    def test_leaf_roundtrip(self):
        node = Node(5, is_leaf=True)
        node.add(Rect(0, 1, 2, 3), (7, 8, 9))
        node.add(Rect(-1, -2, 0, 0), (1, 2, 3))
        buf = page()
        pack_node(node, buf)
        back = unpack_node(5, buf)
        assert back.is_leaf
        assert back.rects == node.rects
        assert back.payloads == node.payloads

    def test_internal_roundtrip(self):
        node = Node(2, is_leaf=False)
        node.add(Rect(0, 0, 1, 1), (42, 0, 0))
        buf = page()
        pack_node(node, buf)
        back = unpack_node(2, buf)
        assert not back.is_leaf
        assert back.payloads == [(42, 0, 0)]

    def test_empty_node(self):
        buf = page()
        pack_node(Node(0, is_leaf=True), buf)
        assert len(unpack_node(0, buf)) == 0

    def test_full_node(self):
        node = Node(1, is_leaf=True)
        for i in range(NODE_CAPACITY):
            node.add(Rect(i, 0, i + 1, 1), (i, 0, 0))
        buf = page()
        pack_node(node, buf)
        assert len(unpack_node(1, buf)) == NODE_CAPACITY

    def test_overfull_node_rejected(self):
        node = Node(1, is_leaf=True)
        for i in range(NODE_CAPACITY + 1):
            node.add(Rect(i, 0, i + 1, 1), (i, 0, 0))
        with pytest.raises(ValueError):
            pack_node(node, page())


class TestNodeHelpers:
    def test_mbr(self):
        node = Node(0, True)
        node.add(Rect(0, 0, 1, 1), (0, 0, 0))
        node.add(Rect(5, -1, 6, 2), (1, 0, 0))
        assert node.mbr() == Rect(0, -1, 6, 2)

    def test_is_full(self):
        node = Node(0, True)
        assert not node.is_full
        for i in range(NODE_CAPACITY):
            node.add(Rect(0, 0, 1, 1), (i, 0, 0))
        assert node.is_full

    def test_entries(self):
        node = Node(0, True)
        node.add(Rect(0, 0, 1, 1), (3, 4, 5))
        assert node.entries() == [(Rect(0, 0, 1, 1), (3, 4, 5))]


class TestMeta:
    def test_roundtrip(self):
        buf = page()
        pack_meta(buf, root_page=17, height=3, count=12345)
        assert unpack_meta(buf) == (17, 3, 12345)

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            unpack_meta(page())

    def test_capacity_is_realistic(self):
        # 8 KB pages with 44-byte entries should hold ~186 entries, giving
        # index sizes comparable to the paper's Table 2.
        assert 150 <= NODE_CAPACITY <= 220
