"""Tests for Hilbert-sort bulk loading."""

import numpy as np
import pytest

from repro.geometry import Polyline, Rect
from repro.index import (
    NODE_CAPACITY,
    RStarTree,
    build_from_sorted,
    bulk_load_rstar,
    extract_keypointers,
    spatial_sort,
)
from repro.storage import OID, SpatialTuple


def load_relation(db, n, seed=0, name="r"):
    rng = np.random.default_rng(seed)
    rel = db.create_relation(name)
    for i in range(n):
        x, y = rng.uniform(0, 100, 2)
        rel.insert(
            SpatialTuple(i, 1, f"t-{i}", Polyline([(x, y), (x + 1, y + 1)]))
        )
    return rel


class TestExtractAndSort:
    def test_extract_matches_relation(self, db):
        rel = load_relation(db, 50)
        kps = extract_keypointers(rel)
        assert len(kps) == 50
        for rect, oid in kps:
            assert rel.fetch(oid).mbr == rect

    def test_spatial_sort_is_permutation(self, db):
        rel = load_relation(db, 100)
        kps = extract_keypointers(rel)
        sorted_kps = spatial_sort(kps)

        def key(kp):
            return (kp[0].as_tuple(), kp[1])

        assert sorted(sorted_kps, key=key) == sorted(kps, key=key)

    def test_spatial_sort_brings_neighbours_together(self, db):
        rel = load_relation(db, 200, seed=1)
        kps = spatial_sort(extract_keypointers(rel))
        # Average distance between consecutive MBR centres should be far
        # smaller than between random pairs.
        def center_dist(a, b):
            (ax, ay), (bx, by) = a[0].center, b[0].center
            return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

        consecutive = np.mean([center_dist(kps[i], kps[i + 1]) for i in range(199)])
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 200, (200, 2))
        random_pairs = np.mean([center_dist(kps[i], kps[j]) for i, j in idx])
        assert consecutive < random_pairs / 2

    def test_sort_empty(self):
        assert spatial_sort([]) == []


class TestBuild:
    def test_structure_invariants(self, db):
        rel = load_relation(db, 1000)
        tree = bulk_load_rstar(db.pool, rel)
        tree.check_invariants()
        assert len(tree) == 1000

    def test_search_equals_scan(self, db):
        rel = load_relation(db, 500, seed=3)
        tree = bulk_load_rstar(db.pool, rel)
        window = Rect(20, 20, 50, 60)
        expected = sorted(oid for oid, t in rel.scan() if t.mbr.intersects(window))
        assert sorted(tree.search(window)) == expected

    def test_empty_relation(self, db):
        db.create_relation("empty")
        tree = build_from_sorted(db.pool, [])
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 1, 1)) == []

    def test_single_entry(self, db):
        tree = build_from_sorted(db.pool, [(Rect(0, 0, 1, 1), OID(0, 0, 0))])
        assert len(tree) == 1
        assert tree.height == 1
        tree.check_invariants()

    def test_multilevel_build(self, db):
        n = NODE_CAPACITY * 3
        entries = [(Rect(i, 0, i + 1, 1), OID(0, i, 0)) for i in range(n)]
        tree = build_from_sorted(db.pool, entries)
        assert tree.height == 2
        tree.check_invariants()

    def test_fill_factor_controls_leaf_count(self, db):
        entries = [(Rect(i, 0, i + 1, 1), OID(0, i, 0)) for i in range(1000)]
        dense = build_from_sorted(db.pool, list(entries), fill=1.0)
        sparse = build_from_sorted(db.pool, list(entries), fill=0.5)
        assert sparse.num_pages > dense.num_pages

    def test_bad_fill_raises(self, db):
        with pytest.raises(ValueError):
            build_from_sorted(db.pool, [], fill=0.0)
        with pytest.raises(ValueError):
            build_from_sorted(db.pool, [], fill=1.5)

    def test_presorted_skips_sort_but_same_content(self, db):
        rel = load_relation(db, 300, seed=4)
        t1 = bulk_load_rstar(db.pool, rel, presorted=False)
        t2 = bulk_load_rstar(db.pool, rel, presorted=True)
        window = Rect(0, 0, 100, 100)
        assert sorted(t1.search(window)) == sorted(t2.search(window))

    def test_reopen_bulk_loaded(self, db):
        rel = load_relation(db, 200, seed=5)
        tree = bulk_load_rstar(db.pool, rel)
        reopened = RStarTree(db.pool, tree.file_id)
        assert len(reopened) == 200
        reopened.check_invariants()

    def test_inserts_after_bulk_load(self, db):
        rel = load_relation(db, 400, seed=6)
        tree = bulk_load_rstar(db.pool, rel)
        tree.insert(Rect(500, 500, 501, 501), OID(9, 9, 9))
        tree.check_invariants()
        assert tree.search(Rect(500, 500, 502, 502)) == [OID(9, 9, 9)]

    def test_tree_size_comparable_to_paper_ratio(self, db):
        # Table 2: hydro 122,149 entries -> 6.5 MB tree (~832 pages).
        # At fill 0.8 and 186-entry nodes the scaled structure should land
        # within a loose factor of that ratio.
        rel = load_relation(db, 2000, seed=7)
        tree = bulk_load_rstar(db.pool, rel)
        expected_leaves = 2000 / (NODE_CAPACITY * 0.8)
        assert tree.num_pages >= expected_leaves
        assert tree.num_pages <= expected_leaves * 2 + 3
