"""Tests for the BKS93 synchronized R-tree join."""

import numpy as np

from repro.geometry import Rect
from repro.index import NODE_CAPACITY, build_from_sorted, rtree_join_pairs
from repro.index.bulkload import spatial_sort
from repro.storage import BufferPool, OID, SimulatedDisk


def make_pool():
    return BufferPool(SimulatedDisk(), 4096)


def random_entries(n, seed, file_id, extent=100.0, size=5.0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent, 2)
        w, h = rng.uniform(0, size, 2)
        out.append((Rect(x, y, x + w, y + h), OID(file_id, i, 0)))
    return out


def build(pool, entries):
    return build_from_sorted(pool, spatial_sort(entries))


def expected_pairs(left, right):
    return sorted(
        (lo, ro)
        for lr, lo in left
        for rr, ro in right
        if lr.intersects(rr)
    )


class TestCorrectness:
    def test_small_random(self):
        pool = make_pool()
        left = random_entries(150, seed=1, file_id=1)
        right = random_entries(150, seed=2, file_id=2)
        tr, ts = build(pool, left), build(pool, right)
        got = sorted(rtree_join_pairs(tr, ts))
        assert got == expected_pairs(left, right)

    def test_multilevel_trees(self):
        pool = make_pool()
        left = random_entries(NODE_CAPACITY * 3, seed=3, file_id=1)
        right = random_entries(NODE_CAPACITY * 3, seed=4, file_id=2)
        tr, ts = build(pool, left), build(pool, right)
        assert tr.height >= 2 and ts.height >= 2
        got = sorted(rtree_join_pairs(tr, ts))
        assert got == expected_pairs(left, right)

    def test_different_heights(self):
        pool = make_pool()
        left = random_entries(NODE_CAPACITY * 4, seed=5, file_id=1)
        right = random_entries(30, seed=6, file_id=2)
        tr, ts = build(pool, left), build(pool, right)
        assert tr.height > ts.height
        got = sorted(rtree_join_pairs(tr, ts))
        assert got == expected_pairs(left, right)

    def test_different_heights_swapped(self):
        pool = make_pool()
        left = random_entries(30, seed=7, file_id=1)
        right = random_entries(NODE_CAPACITY * 4, seed=8, file_id=2)
        tr, ts = build(pool, left), build(pool, right)
        assert tr.height < ts.height
        got = sorted(rtree_join_pairs(tr, ts))
        assert got == expected_pairs(left, right)

    def test_pair_sides_not_swapped(self):
        pool = make_pool()
        left = [(Rect(0, 0, 1, 1), OID(1, 0, 0))]
        right = [(Rect(0.5, 0.5, 2, 2), OID(2, 0, 0))]
        tr, ts = build(pool, left), build(pool, right)
        assert rtree_join_pairs(tr, ts) == [(OID(1, 0, 0), OID(2, 0, 0))]


class TestEdgeCases:
    def test_empty_left(self):
        pool = make_pool()
        tr = build(pool, [])
        ts = build(pool, random_entries(20, seed=9, file_id=2))
        assert rtree_join_pairs(tr, ts) == []

    def test_empty_right(self):
        pool = make_pool()
        tr = build(pool, random_entries(20, seed=10, file_id=1))
        ts = build(pool, [])
        assert rtree_join_pairs(tr, ts) == []

    def test_disjoint_universes(self):
        pool = make_pool()
        left = random_entries(100, seed=11, file_id=1, extent=50)
        right = [
            (Rect(r.xl + 1000, r.yl, r.xu + 1000, r.yu), o)
            for r, o in random_entries(100, seed=12, file_id=2, extent=50)
        ]
        tr, ts = build(pool, left), build(pool, right)
        assert rtree_join_pairs(tr, ts) == []

    def test_self_join(self):
        pool = make_pool()
        entries = random_entries(100, seed=13, file_id=1)
        tr = build(pool, entries)
        got = sorted(rtree_join_pairs(tr, tr))
        assert got == expected_pairs(entries, entries)

    def test_join_on_insert_built_trees(self):
        # The join must work on trees built by repeated insertion too.
        from repro.index import RStarTree

        pool = make_pool()
        left = random_entries(250, seed=14, file_id=1)
        right = random_entries(250, seed=15, file_id=2)
        tr, ts = RStarTree(pool), RStarTree(pool)
        for rect, oid in left:
            tr.insert(rect, oid)
        for rect, oid in right:
            ts.insert(rect, oid)
        got = sorted(rtree_join_pairs(tr, ts))
        assert got == expected_pairs(left, right)
