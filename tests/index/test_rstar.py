"""Tests for R*-tree insertion, search, and structural invariants."""

import numpy as np

from repro.geometry import Rect
from repro.index import NODE_CAPACITY, RStarTree, rstar_split
from repro.index.rstar import MIN_FILL
from repro.storage import OID, BufferPool, SimulatedDisk


def make_tree(capacity_pages=4096):
    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity_pages)
    return pool, RStarTree(pool)


def random_rects(n, seed=0, extent=1000.0, size=10.0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        w = rng.uniform(0, size)
        h = rng.uniform(0, size)
        out.append((Rect(x, y, x + w, y + h), OID(0, i, 0)))
    return out


class TestEmptyAndSmall:
    def test_empty_tree(self):
        _pool, tree = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search(Rect(0, 0, 100, 100)) == []
        tree.check_invariants()

    def test_single_insert(self):
        _pool, tree = make_tree()
        tree.insert(Rect(0, 0, 1, 1), OID(0, 0, 0))
        assert len(tree) == 1
        assert tree.search(Rect(0.5, 0.5, 2, 2)) == [OID(0, 0, 0)]
        assert tree.search(Rect(5, 5, 6, 6)) == []
        tree.check_invariants()

    def test_duplicate_rects_allowed(self):
        _pool, tree = make_tree()
        r = Rect(0, 0, 1, 1)
        for i in range(10):
            tree.insert(r, OID(0, i, 0))
        assert len(tree.search(r)) == 10
        tree.check_invariants()


class TestGrowth:
    def test_root_split_increases_height(self):
        _pool, tree = make_tree()
        for rect, oid in random_rects(NODE_CAPACITY + 1, seed=1):
            tree.insert(rect, oid)
        assert tree.height == 2
        tree.check_invariants()

    def test_three_levels(self):
        _pool, tree = make_tree()
        # Too slow for full fanout^2; grow until height 3 appears.
        for rect, oid in random_rects(3000, seed=2):
            tree.insert(rect, oid)
        assert tree.height >= 2
        tree.check_invariants()

    def test_count_tracks_inserts(self):
        _pool, tree = make_tree()
        entries = random_rects(500, seed=3)
        for rect, oid in entries:
            tree.insert(rect, oid)
        assert len(tree) == 500


class TestSearchCorrectness:
    def test_search_equals_linear_scan(self):
        _pool, tree = make_tree()
        entries = random_rects(800, seed=4)
        for rect, oid in entries:
            tree.insert(rect, oid)
        tree.check_invariants()
        for window_rect, _oid in random_rects(20, seed=5, size=120.0):
            expected = sorted(
                oid for rect, oid in entries if rect.intersects(window_rect)
            )
            got = sorted(tree.search(window_rect))
            assert got == expected

    def test_all_entries_returns_everything(self):
        _pool, tree = make_tree()
        entries = random_rects(300, seed=6)
        for rect, oid in entries:
            tree.insert(rect, oid)
        assert sorted(oid for _r, oid in tree.all_entries()) == sorted(
            oid for _r, oid in entries
        )

    def test_point_window(self):
        _pool, tree = make_tree()
        tree.insert(Rect(0, 0, 10, 10), OID(0, 1, 0))
        assert tree.search(Rect(5, 5, 5, 5)) == [OID(0, 1, 0)]


class TestPersistence:
    def test_reopen_from_file(self):
        pool, tree = make_tree()
        entries = random_rects(400, seed=7)
        for rect, oid in entries:
            tree.insert(rect, oid)
        reopened = RStarTree(pool, tree.file_id)
        assert len(reopened) == 400
        assert reopened.height == tree.height
        window = Rect(0, 0, 500, 500)
        assert sorted(reopened.search(window)) == sorted(tree.search(window))

    def test_survives_buffer_pressure(self):
        # A pool far smaller than the tree forces evictions mid-build.
        disk = SimulatedDisk()
        pool = BufferPool(disk, 8)
        tree = RStarTree(pool)
        entries = random_rects(4000, seed=8)
        for rect, oid in entries:
            tree.insert(rect, oid)
        tree.check_invariants()
        assert disk.stats.page_writes > 0  # evictions really happened
        for window_rect, _oid in random_rects(5, seed=9, size=200.0):
            expected = sorted(
                oid for rect, oid in entries if rect.intersects(window_rect)
            )
            assert sorted(tree.search(window_rect)) == expected


class TestSplitHeuristic:
    def test_split_respects_min_fill(self):
        entries = [(r, tuple(o)) for r, o in random_rects(NODE_CAPACITY + 1, seed=10)]
        a, b = rstar_split(entries)
        assert len(a) + len(b) == len(entries)
        assert min(len(a), len(b)) >= min(MIN_FILL, len(entries) // 3)

    def test_split_partitions_entries(self):
        entries = [(r, tuple(o)) for r, o in random_rects(50, seed=11)]
        a, b = rstar_split(entries)
        assert sorted(map(repr, a + b)) == sorted(map(repr, entries))

    def test_split_separates_clusters(self):
        left = [(Rect(i, 0, i + 1, 1), (i, 0, 0)) for i in range(10)]
        right = [(Rect(1000 + i, 0, 1001 + i, 1), (100 + i, 0, 0)) for i in range(10)]
        a, b = rstar_split(left + right)
        ids_a = {p[0] for _r, p in a}
        # One group should be exactly the left cluster (any order).
        assert ids_a in ({i for i in range(10)}, {100 + i for i in range(10)})


class TestClusteredInsertion:
    def test_sequential_rects(self):
        # Monotone insert order exercises the reinsert path differently.
        _pool, tree = make_tree()
        for i in range(NODE_CAPACITY * 2):
            tree.insert(Rect(i, i, i + 1, i + 1), OID(0, i, 0))
        tree.check_invariants()
        # Rects 0..9 overlap the window; rect 10 touches its corner (closed
        # semantics), so 11 in total.
        assert len(tree.search(Rect(0, 0, 10, 10))) == 11

    def test_identical_points(self):
        _pool, tree = make_tree()
        for i in range(NODE_CAPACITY + 5):
            tree.insert(Rect(1, 1, 1, 1), OID(0, i, 0))
        tree.check_invariants()
        assert len(tree.search(Rect(1, 1, 1, 1))) == NODE_CAPACITY + 5
