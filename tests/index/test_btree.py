"""Tests for the B+-tree substrate."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree, bulk_load_btree
from repro.storage import BufferPool, SimulatedDisk

PAYLOAD = 12


def make_tree(capacity_pages=1024, payload=PAYLOAD):
    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity_pages)
    return disk, pool, BPlusTree(pool, payload)


def pay(v: int) -> bytes:
    return struct.pack("<III", v, v + 1, v + 2)


class TestBasics:
    def test_empty(self):
        _d, _p, tree = make_tree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert list(tree.scan_all()) == []
        tree.check_invariants()

    def test_payload_size_validated(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 8)
        with pytest.raises(ValueError):
            BPlusTree(pool, 0)
        tree = BPlusTree(pool, 4)
        with pytest.raises(ValueError):
            tree.insert(1, b"too long")

    def test_single_insert(self):
        _d, _p, tree = make_tree()
        tree.insert(42, pay(1))
        assert tree.search(42) == [pay(1)]
        assert tree.search(41) == []
        tree.check_invariants()

    def test_duplicates(self):
        _d, _p, tree = make_tree()
        for i in range(10):
            tree.insert(7, pay(i))
        assert len(tree.search(7)) == 10
        tree.check_invariants()


class TestGrowth:
    def test_many_inserts_random_order(self):
        _d, _p, tree = make_tree()
        rng = np.random.default_rng(0)
        keys = [int(k) for k in rng.integers(0, 10**9, 3000)]
        for i, k in enumerate(keys):
            tree.insert(k, pay(i))
        assert len(tree) == 3000
        assert tree.height >= 2
        tree.check_invariants()
        scanned = [k for k, _p in tree.scan_all()]
        assert scanned == sorted(keys)

    def test_sequential_inserts(self):
        _d, _p, tree = make_tree()
        for i in range(2000):
            tree.insert(i, pay(i))
        tree.check_invariants()
        assert [k for k, _p in tree.range_scan(100, 110)] == list(range(100, 111))

    def test_duplicate_runs_across_splits(self):
        _d, _p, tree = make_tree()
        # Far more duplicates of one key than fit in one leaf.
        for i in range(1500):
            tree.insert(1000, pay(i))
        tree.insert(999, pay(0))
        tree.insert(1001, pay(0))
        tree.check_invariants()
        assert len(tree.search(1000)) == 1500


class TestRangeScan:
    def test_matches_linear_filter(self):
        _d, _p, tree = make_tree()
        rng = np.random.default_rng(1)
        keys = [int(k) for k in rng.integers(0, 5000, 2000)]
        for i, k in enumerate(keys):
            tree.insert(k, pay(i))
        for lo, hi in [(0, 5000), (100, 200), (4999, 5000), (2500, 2500)]:
            expected = sorted(k for k in keys if lo <= k <= hi)
            got = [k for k, _p in tree.range_scan(lo, hi)]
            assert got == expected, (lo, hi)

    def test_empty_range(self):
        _d, _p, tree = make_tree()
        tree.insert(10, pay(0))
        assert list(tree.range_scan(11, 20)) == []

    def test_malformed_range(self):
        _d, _p, tree = make_tree()
        with pytest.raises(ValueError):
            list(tree.range_scan(5, 4))

    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=300),
           st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_range_scan_property(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        _d, _p, tree = make_tree()
        for i, k in enumerate(keys):
            tree.insert(k, struct.pack("<III", i, 0, 0))
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert [k for k, _p in tree.range_scan(lo, hi)] == expected


class TestPersistence:
    def test_reopen(self):
        _d, pool, tree = make_tree()
        for i in range(500):
            tree.insert(i * 3, pay(i))
        reopened = BPlusTree(pool, PAYLOAD, tree.file_id)
        assert len(reopened) == 500
        assert reopened.search(12) == tree.search(12)
        reopened.check_invariants()

    def test_survives_buffer_pressure(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 6)
        tree = BPlusTree(pool, PAYLOAD)
        rng = np.random.default_rng(2)
        keys = [int(k) for k in rng.integers(0, 10**6, 4000)]
        for i, k in enumerate(keys):
            tree.insert(k, pay(i))
        assert disk.stats.page_writes > 0
        # The node cache must not mask evicted pages.
        tree._cache.clear()
        assert [k for k, _p in tree.scan_all()] == sorted(keys)

    def test_bad_magic(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 8)
        fid = disk.create_file()
        pool.new_page(fid)
        with pytest.raises(ValueError):
            BPlusTree(pool, PAYLOAD, fid)


class TestBulkLoad:
    def test_matches_inserted_tree(self):
        _d, pool, _unused = make_tree()
        items = [(i * 2, pay(i)) for i in range(3000)]
        tree = bulk_load_btree(pool, items, PAYLOAD)
        tree.check_invariants()
        assert len(tree) == 3000
        assert [k for k, _p in tree.range_scan(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_unsorted_rejected(self):
        _d, pool, _unused = make_tree()
        with pytest.raises(ValueError):
            bulk_load_btree(pool, [(2, pay(0)), (1, pay(1))], PAYLOAD)

    def test_empty(self):
        _d, pool, _unused = make_tree()
        tree = bulk_load_btree(pool, [], PAYLOAD)
        assert len(tree) == 0
        tree.check_invariants()

    def test_inserts_after_bulk_load(self):
        _d, pool, _unused = make_tree()
        tree = bulk_load_btree(pool, [(i, pay(i)) for i in range(1000)], PAYLOAD)
        tree.insert(5000, pay(0))
        tree.check_invariants()
        assert tree.search(5000) == [pay(0)]

    def test_bad_fill(self):
        _d, pool, _unused = make_tree()
        with pytest.raises(ValueError):
            bulk_load_btree(pool, [], PAYLOAD, fill=0.0)
