"""Tests for the grid file substrate."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.index.gridfile import GridFile, build_grid_file
from repro.storage import BufferPool, OID, SimulatedDisk

UNIVERSE = Rect(0.0, 0.0, 100.0, 100.0)


def make_grid(capacity=8, pool_pages=64):
    disk = SimulatedDisk()
    pool = BufferPool(disk, pool_pages)
    return disk, GridFile(pool, UNIVERSE, bucket_capacity=capacity)


def random_entries(n, seed=0, size=3.0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, 95, 2)
        w, h = rng.uniform(0, size, 2)
        out.append((Rect(x, y, x + w, y + h), OID(0, i, 0)))
    return out


class TestBasics:
    def test_empty_grid(self):
        _disk, grid = make_grid()
        assert grid.count == 0
        assert grid.num_cells == 1
        assert grid.search_window(UNIVERSE) == []

    def test_capacity_validated(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 8)
        with pytest.raises(ValueError):
            GridFile(pool, UNIVERSE, bucket_capacity=1)

    def test_insert_and_find(self):
        _disk, grid = make_grid()
        r = Rect(10, 10, 12, 12)
        grid.insert(r, OID(0, 1, 0))
        assert grid.search_window(Rect(9, 9, 13, 13)) == [(r, OID(0, 1, 0))]

    def test_splits_on_overflow(self):
        _disk, grid = make_grid(capacity=4)
        for rect, oid in random_entries(50, seed=1):
            grid.insert(rect, oid)
        assert grid.num_cells > 1
        assert grid.num_buckets > 1


class TestCorrectness:
    def test_all_entries_complete(self):
        _disk, grid = make_grid(capacity=4)
        entries = random_entries(300, seed=2)
        for rect, oid in entries:
            grid.insert(rect, oid)
        got = sorted(oid for _r, oid in grid.all_entries())
        assert got == sorted(oid for _r, oid in entries)

    def test_window_search_matches_linear_scan(self):
        _disk, grid = make_grid(capacity=6)
        entries = random_entries(400, seed=3)
        for rect, oid in entries:
            grid.insert(rect, oid)
        for wrect, _ in random_entries(15, seed=4, size=40.0):
            expected = sorted(
                oid for rect, oid in entries if wrect.contains_point(*rect.center)
            )
            got = sorted(oid for _r, oid in grid.search_window(wrect))
            assert got == expected

    def test_identical_centres_tolerated(self):
        _disk, grid = make_grid(capacity=2)
        r = Rect(50, 50, 52, 52)
        for i in range(10):
            grid.insert(r, OID(0, i, 0))
        assert len(grid.search_window(Rect(49, 49, 53, 53))) == 10

    def test_skewed_insertions(self):
        # Everything in one corner: many splits on the same region.
        _disk, grid = make_grid(capacity=4)
        rng = np.random.default_rng(5)
        entries = []
        for i in range(200):
            x, y = rng.uniform(0, 5, 2)
            entries.append((Rect(x, y, x + 0.1, y + 0.1), OID(0, i, 0)))
        for rect, oid in entries:
            grid.insert(rect, oid)
        got = sorted(oid for _r, oid in grid.all_entries())
        assert got == sorted(oid for _r, oid in entries)

    def test_directory_shape_consistent(self):
        _disk, grid = make_grid(capacity=4)
        for rect, oid in random_entries(250, seed=6):
            grid.insert(rect, oid)
        assert len(grid.directory) == len(grid.x_scale) + 1
        assert all(
            len(col) == len(grid.y_scale) + 1 for col in grid.directory
        )

    def test_max_extent_tracking(self):
        _disk, grid = make_grid()
        grid.insert(Rect(0, 0, 10, 4), OID(0, 0, 0))
        assert grid.max_half_w == 5.0
        assert grid.max_half_h == 2.0


class TestIOAccounting:
    def test_probes_cost_page_accesses(self):
        disk, grid = make_grid(capacity=4, pool_pages=4)
        for rect, oid in random_entries(300, seed=7):
            grid.insert(rect, oid)
        grid.pool.clear()
        before = disk.stats.page_reads
        grid.search_window(Rect(0, 0, 50, 50))
        assert disk.stats.page_reads > before


class TestBuildFromRelation:
    def test_build_grid_file(self, db):
        from repro.data import generate_rail
        from repro.data.loader import load_relation

        rel = load_relation(db, "rail", generate_rail(scale=0.002))
        grid = build_grid_file(db.pool, rel, bucket_capacity=8)
        assert grid.count == len(rel)
        got = sorted(oid for _r, oid in grid.all_entries())
        assert got == sorted(oid for oid, _t in rel.scan())


class TestAddressingInvariant:
    def test_every_entry_reachable_from_its_cell(self):
        """The invariant whose violation caused a real bug: after any
        sequence of splits, an entry must live in the bucket its centre's
        directory cell points to."""
        _disk, grid = make_grid(capacity=6)
        entries = random_entries(400, seed=3)
        for rect, oid in entries:
            grid.insert(rect, oid)
        for rect, oid in entries:
            bucket = grid._bucket_of(*rect.center)
            assert (rect, oid) in bucket.entries, oid

    def test_reachability_under_skew(self):
        import numpy as np

        _disk, grid = make_grid(capacity=4)
        rng = np.random.default_rng(11)
        entries = []
        for i in range(300):
            # Two tight clusters force repeated splits of shared buckets.
            base = 5.0 if i % 2 else 90.0
            x, y = base + rng.uniform(0, 2, 2)
            entries.append((Rect(x, y, x + 0.2, y + 0.2), OID(0, i, 0)))
        for rect, oid in entries:
            grid.insert(rect, oid)
        for rect, oid in entries:
            assert (rect, oid) in grid._bucket_of(*rect.center).entries


class TestGridFileProperty:
    def test_random_workloads_match_model(self):
        """Hypothesis-style randomized check against a list model."""
        import numpy as np

        for seed in range(8):
            rng = np.random.default_rng(seed)
            _disk, grid = make_grid(capacity=int(rng.integers(2, 10)))
            entries = []
            n = int(rng.integers(1, 250))
            for i in range(n):
                x, y = rng.uniform(0, 99, 2)
                w, h = rng.uniform(0, 4, 2)
                e = (Rect(x, y, min(x + w, 100), min(y + h, 100)), OID(0, i, 0))
                entries.append(e)
                grid.insert(*e)
            # Invariants after every full load:
            got = sorted(oid for _r, oid in grid.all_entries())
            assert got == sorted(oid for _r, oid in entries), seed
            for rect, oid in entries:
                assert (rect, oid) in grid._bucket_of(*rect.center).entries, seed
            wx, wy = rng.uniform(0, 80, 2)
            window = Rect(wx, wy, wx + 20, wy + 20)
            expected = sorted(
                oid for rect, oid in entries
                if window.contains_point(*rect.center)
            )
            assert sorted(o for _r, o in grid.search_window(window)) == expected
