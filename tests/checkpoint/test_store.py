"""CheckpointStore: the ordinal clock, durability charging, the fault
gate's injection points, and directory-level inspect/gc."""

import pytest

from repro.checkpoint import (
    STATE_COMPLETE,
    STATE_MERGING,
    CheckpointStore,
    JoinManifest,
    RunFingerprint,
    gc_checkpoint_dir,
    inspect_checkpoint_dir,
)
from repro.faults import CheckpointFaultGate, CoordinatorKilledError, tear_tail
from repro.faults.plan import FaultPlan, FaultSpec
from repro.parallel import PairTaskResult
from repro.storage.disk import SimulatedDisk


def make_fingerprint(salt=0):
    return RunFingerprint(
        count_r=10 + salt, count_s=20, crc_r=111, crc_s=222,
        predicate="intersects", num_partitions=4, config={"num_tiles": 64},
    )


def make_result(index=0, pairs=((1, 2),)):
    return PairTaskResult(
        index=index, worker_pid=1234, pairs=[tuple(p) for p in pairs],
        candidates=3, count_r=2, count_s=2, wall_s=0.01,
    )


SEAL_R = {"type": "spills_sealed", "side": "r", "files": [], "placed": 0}
SEAL_S = {"type": "spills_sealed", "side": "s", "files": [], "placed": 0}


class TestOrdinalClock:
    def test_every_durable_op_ticks_once(self, tmp_path):
        seen = []
        store = CheckpointStore(
            tmp_path, make_fingerprint(),
            on_durable=lambda o, p, k: seen.append((o, k)),
        )
        with store:
            store.begin(JoinManifest(store.fingerprint))      # ordinal 1
            store.append_event(SEAL_R)                        # ordinal 2
            store.append_result(make_result(0))               # ordinal 3
            store.append_result(make_result(1))               # ordinal 4
        assert store.ordinal == 4
        assert seen == [(1, "manifest"), (2, "manifest"),
                        (3, "result"), (4, "result")]

    def test_callback_fires_after_the_write_is_durable(self, tmp_path):
        # State observed at callback time must already be on disk: a kill
        # fired at ordinal N keeps everything through N.
        store = CheckpointStore(tmp_path, make_fingerprint())
        observed = {}

        def peek(ordinal, path, kind):
            observed[ordinal] = store.manifest_path.read_bytes()

        store.on_durable = peek
        with store:
            store.begin(JoinManifest(store.fingerprint))
            store.append_event(SEAL_R)
        reloaded = JoinManifest.from_bytes(observed[2])
        assert reloaded.events == [SEAL_R]

    def test_durable_writes_charge_the_simulated_disk(self, tmp_path):
        disk = SimulatedDisk()
        store = CheckpointStore(tmp_path, make_fingerprint(), disk=disk)
        with store:
            store.begin(JoinManifest(store.fingerprint))
            store.append_result(make_result())
        # Each durable op pays pages + fsyncs into the model.
        assert disk.stats.fsyncs == 4           # 2 per durable op
        assert disk.stats.random_writes == 2    # 1 per durable op
        assert disk.stats.page_writes >= 2


class TestResultRoundTrip:
    def test_results_replay_by_pair_index(self, tmp_path):
        store = CheckpointStore(tmp_path, make_fingerprint())
        with store:
            store.begin(JoinManifest(store.fingerprint))
            store.append_result(make_result(2, pairs=((5, 6),)))
            store.append_result(make_result(0, pairs=((1, 2), (3, 4))))
        committed, torn = store.replay_results()
        assert not torn
        assert sorted(committed) == [0, 2]
        assert committed[0].pairs == [(1, 2), (3, 4)]
        assert committed[2].pairs == [(5, 6)]

    def test_torn_result_tail_loses_only_the_last_append(self, tmp_path):
        store = CheckpointStore(tmp_path, make_fingerprint())
        with store:
            store.begin(JoinManifest(store.fingerprint))
            store.append_result(make_result(0))
            store.append_result(make_result(1))
        assert tear_tail(store.results_path)
        committed, torn = store.replay_results()
        assert torn
        assert sorted(committed) == [0]

    def test_discard_results_requeues_everything(self, tmp_path):
        store = CheckpointStore(tmp_path, make_fingerprint())
        with store:
            store.begin(JoinManifest(store.fingerprint))
            store.append_result(make_result(0))
            store.discard_results()
            committed, _ = store.replay_results()
        assert committed == {}
        assert not store.results_path.exists()


class TestFaultGate:
    def test_soft_kill_fires_after_the_planned_ordinal(self, tmp_path):
        gate = CheckpointFaultGate(None, extra_kills=(2,))
        store = CheckpointStore(
            tmp_path, make_fingerprint(), on_durable=gate.after_durable
        )
        with store:
            store.begin(JoinManifest(store.fingerprint))
            with pytest.raises(CoordinatorKilledError) as exc_info:
                store.append_event(SEAL_R)
            assert exc_info.value.ordinal == 2
        assert gate.fired_kills == 1
        # Ordinal 2's write completed before the kill: it must be on disk.
        reloaded = store.load()
        assert reloaded.events == [SEAL_R]

    def test_kill_is_one_shot(self, tmp_path):
        gate = CheckpointFaultGate(None, extra_kills=(1,))
        store = CheckpointStore(
            tmp_path, make_fingerprint(), on_durable=gate.after_durable
        )
        with store:
            with pytest.raises(CoordinatorKilledError):
                store.begin(JoinManifest(store.fingerprint))
            store.manifest = JoinManifest(store.fingerprint)
            store.append_event(SEAL_R)  # ordinal 2: no second kill
        assert gate.fired_kills == 1
        assert not gate.armed

    def test_plan_compiled_tear_damages_the_manifest(self, tmp_path):
        plan = FaultPlan.compile(
            FaultSpec(torn_manifests=1), seed=1, num_pairs=4
        )
        (ordinal,) = plan.torn_manifest_ordinals
        assert 1 <= ordinal <= 4
        events = []
        gate = CheckpointFaultGate(plan, on_event=events.append)
        store = CheckpointStore(
            tmp_path, make_fingerprint(), on_durable=gate.after_durable
        )
        with store:
            store.begin(JoinManifest(store.fingerprint))
            for _ in range(ordinal):  # push past the tear point
                try:
                    store.append_event(SEAL_R)
                except CoordinatorKilledError:  # pragma: no cover
                    pytest.fail("tear-only plan must not kill")
        assert gate.fired_tears == 1
        assert events == ["torn_manifest"]

    def test_named_plans_compile_checkpoint_faults(self):
        kill = FaultPlan.compile(FaultSpec(coordinator_kills=1), seed=3,
                                 num_pairs=8)
        assert len(kill.coordinator_kill_ordinals) == 1
        assert all(o >= 2 for o in kill.coordinator_kill_ordinals)
        # Serialization keeps plans replayable: same dict, same points.
        again = FaultPlan.from_dict(kill.to_dict())
        assert again.coordinator_kill_ordinals == kill.coordinator_kill_ordinals


class TestHousekeeping:
    def test_sweep_collects_orphan_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path, make_fingerprint())
        with store:
            store.begin(JoinManifest(store.fingerprint))
            orphan = store.spill_dir / "r_3.kp.tmp"
            orphan.write_bytes(b"half-written")
            swept = store.sweep_orphans()
        assert [p.endswith("r_3.kp.tmp") for p in swept] == [True]
        assert not orphan.exists()

    def test_sibling_run_ids(self, tmp_path):
        a = CheckpointStore(tmp_path, make_fingerprint(0))
        b = CheckpointStore(tmp_path, make_fingerprint(1))
        with a, b:
            a.begin(JoinManifest(a.fingerprint))
            b.begin(JoinManifest(b.fingerprint))
        assert a.sibling_run_ids() == [b.fingerprint.run_id]
        assert b.sibling_run_ids() == [a.fingerprint.run_id]


class TestInspectAndGC:
    def _seed_runs(self, tmp_path):
        done = CheckpointStore(tmp_path, make_fingerprint(0))
        with done:
            done.begin(JoinManifest(done.fingerprint))
            done.append_event(SEAL_R)
            done.append_event(SEAL_S)
            done.append_event({"type": "phase", "state": STATE_MERGING,
                               "pairs_total": 2})
            done.append_result(make_result(0))
            done.append_result(make_result(1))
            done.append_event({"type": "complete", "result_count": 2})
        half = CheckpointStore(tmp_path, make_fingerprint(1))
        with half:
            half.begin(JoinManifest(half.fingerprint))
            half.append_event(SEAL_R)
        return done, half

    def test_inspect_reports_state_and_progress(self, tmp_path):
        done, half = self._seed_runs(tmp_path)
        infos = {i.run_id: i for i in inspect_checkpoint_dir(tmp_path)}
        assert set(infos) == {done.fingerprint.run_id, half.fingerprint.run_id}
        d = infos[done.fingerprint.run_id]
        assert d.state == STATE_COMPLETE and d.complete
        assert d.pairs_done == 2 and d.pairs_total == 2
        assert d.result_count == 2 and d.bytes_total > 0 and not d.error
        h = infos[half.fingerprint.run_id]
        assert not h.complete and h.pairs_done == 0 and h.pairs_total is None

    def test_inspect_flags_a_corrupt_manifest_instead_of_raising(self, tmp_path):
        done, _half = self._seed_runs(tmp_path)
        (done.manifest_path).write_bytes(b"\x00" * 32)
        info = {i.run_id: i for i in inspect_checkpoint_dir(tmp_path)}[
            done.fingerprint.run_id
        ]
        assert info.state == "corrupt" and info.error

    def test_gc_default_keeps_resumable_runs(self, tmp_path):
        done, half = self._seed_runs(tmp_path)
        report = gc_checkpoint_dir(tmp_path)
        assert report.removed == [done.fingerprint.run_id]
        assert report.kept == [half.fingerprint.run_id]
        assert report.bytes_freed > 0
        assert half.run_dir.is_dir() and not done.run_dir.exists()

    def test_gc_dry_run_previews_without_deleting(self, tmp_path):
        done, half = self._seed_runs(tmp_path)
        rehearsal = gc_checkpoint_dir(tmp_path, dry_run=True)
        assert rehearsal.removed == [done.fingerprint.run_id]
        assert rehearsal.kept == [half.fingerprint.run_id]
        assert rehearsal.bytes_freed > 0
        assert done.run_dir.is_dir() and half.run_dir.is_dir()
        # The real pass removes exactly what the rehearsal promised —
        # same selection code, so the numbers cannot drift.
        real = gc_checkpoint_dir(tmp_path)
        assert real.removed == rehearsal.removed
        assert real.bytes_freed == rehearsal.bytes_freed
        assert not done.run_dir.exists() and half.run_dir.is_dir()

    def test_gc_by_name_and_all(self, tmp_path):
        done, half = self._seed_runs(tmp_path)
        by_name = gc_checkpoint_dir(tmp_path, run_id=half.fingerprint.run_id)
        assert by_name.removed == [half.fingerprint.run_id]
        rest = gc_checkpoint_dir(tmp_path, all_runs=True)
        assert rest.removed == [done.fingerprint.run_id]
        assert inspect_checkpoint_dir(tmp_path) == []
