"""Property test: one flipped byte anywhere in a serialized manifest.

The loader's whole contract in a single property — corrupt any byte of
the on-disk bytes and loading either (a) raises the typed
``ManifestCorruptionError``, or (b) returns a manifest whose fingerprint
is unchanged and whose events are a **strict prefix** of what was
written.  It never silently returns different events, a mutated
fingerprint, or reordered state: the CRC32 framing guarantees detection
of any single-byte error, so the only lossy-but-accepted outcome is a
torn tail truncated away.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import JoinManifest, RunFingerprint
from repro.storage.errors import ManifestCorruptionError

FINGERPRINT = RunFingerprint(
    count_r=457, count_s=122, crc_r=123456789, crc_s=987654321,
    predicate="intersects", num_partitions=8,
    config={"num_tiles": 1024, "scheme": "hash", "memory_bytes": None},
)

EVENTS = [
    {"type": "spills_sealed", "side": "r", "placed": 457,
     "files": [{"partition": i, "kp": f"r_{i}.kp", "tup": f"r_{i}.tup",
                "kp_bytes": 20 * i, "tup_bytes": 40 * i, "count": i}
               for i in range(4)]},
    {"type": "spills_sealed", "side": "s", "placed": 122, "files": []},
    {"type": "phase", "state": "merging", "pairs_total": 8},
    {"type": "complete", "result_count": 39},
]

BASE = JoinManifest(FINGERPRINT, events=EVENTS).to_bytes()


def test_uncorrupted_baseline_loads_exactly():
    loaded = JoinManifest.from_bytes(BASE)
    assert loaded.fingerprint == FINGERPRINT
    assert loaded.events == EVENTS
    assert not loaded.recovered_torn_tail


@settings(max_examples=400, deadline=None)
@given(
    pos=st.integers(min_value=0, max_value=len(BASE) - 1),
    flip=st.integers(min_value=1, max_value=255),
)
def test_one_corrupt_byte_gives_prefix_or_typed_error(pos, flip):
    data = bytearray(BASE)
    data[pos] ^= flip
    try:
        loaded = JoinManifest.from_bytes(bytes(data))
    except ManifestCorruptionError:
        return  # refusing corrupt bytes is always correct
    # Accepted: then it must be the original run's intact event prefix.
    assert loaded.fingerprint == FINGERPRINT
    assert loaded.events == EVENTS[: len(loaded.events)]
    # A one-byte flip always damaged *something*; an accepted load can only
    # have survived by truncating the tail, never by reading through it.
    assert loaded.recovered_torn_tail
    assert len(loaded.events) < len(EVENTS)


@settings(max_examples=100, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(BASE) - 1))
def test_truncation_gives_prefix_or_typed_error(cut):
    # A crashed writer that bypassed the atomic protocol leaves a prefix of
    # the bytes; the loader must treat it exactly like a torn tail.
    try:
        loaded = JoinManifest.from_bytes(BASE[:cut])
    except ManifestCorruptionError:
        return  # e.g. the header itself did not survive
    assert loaded.fingerprint == FINGERPRINT
    assert loaded.events == EVENTS[: len(loaded.events)]
    assert len(loaded.events) < len(EVENTS)
