"""JoinManifest: round trips, the derived state machine, and the loader's
prefix-or-error contract."""

import pytest

from repro.checkpoint import (
    EVENT_TYPES,
    MANIFEST_VERSION,
    STATE_COMPLETE,
    STATE_CREATED,
    STATE_MERGING,
    STATE_PARTITIONED,
    JoinManifest,
    RunFingerprint,
)
from repro.checkpoint.manifest import _encode
from repro.faults import tear_frame, tear_tail
from repro.storage.errors import ManifestCorruptionError
from repro.storage.spill import pack_frame


def make_fingerprint(**overrides):
    base = dict(
        count_r=457, count_s=122, crc_r=0xDEADBEEF, crc_s=0xCAFEF00D,
        predicate="intersects", num_partitions=8,
        config={"num_tiles": 1024, "scheme": "hash"},
    )
    base.update(overrides)
    return RunFingerprint(**base)


SEAL_R = {
    "type": "spills_sealed", "side": "r",
    "files": [{"partition": 0, "kp": "r_0.kp", "tup": "r_0.tup",
               "kp_bytes": 40, "tup_bytes": 80, "count": 2}],
    "placed": 2,
}
SEAL_S = {
    "type": "spills_sealed", "side": "s",
    "files": [{"partition": 0, "kp": "s_0.kp", "tup": "s_0.tup",
               "kp_bytes": 20, "tup_bytes": 40, "count": 1}],
    "placed": 1,
}
MERGING = {"type": "phase", "state": STATE_MERGING, "pairs_total": 8}
COMPLETE = {"type": "complete", "result_count": 39}

EVENTS = [SEAL_R, SEAL_S, MERGING, COMPLETE]


class TestFingerprint:
    def test_run_id_is_stable_and_order_independent(self):
        a = make_fingerprint()
        b = RunFingerprint.from_dict(dict(reversed(list(a.to_dict().items()))))
        assert a == b
        assert a.run_id == b.run_id
        assert a.run_id.startswith("run-") and len(a.run_id) == 4 + 12

    def test_any_field_changes_the_run_id(self):
        base = make_fingerprint()
        for field, value in [
            ("count_r", 458), ("crc_s", 1), ("predicate", "within"),
            ("num_partitions", 16), ("config", {"num_tiles": 512}),
        ]:
            changed = make_fingerprint(**{field: value})
            assert changed != base, field
            assert changed.run_id != base.run_id, field


class TestStateMachine:
    def test_fresh_manifest_is_created(self):
        assert JoinManifest(make_fingerprint()).state == STATE_CREATED

    def test_both_seals_reach_partitioned(self):
        m = JoinManifest(make_fingerprint())
        m.apply(SEAL_R)
        assert m.state == STATE_CREATED
        m.apply(SEAL_S)
        assert m.state == STATE_PARTITIONED

    def test_phase_and_complete_events(self):
        m = JoinManifest(make_fingerprint(), events=[SEAL_R, SEAL_S])
        m.apply(MERGING)
        assert m.state == STATE_MERGING
        assert m.pairs_total == 8
        m.apply(COMPLETE)
        assert m.state == STATE_COMPLETE
        assert m.result_count == 39

    def test_later_seal_supersedes(self):
        m = JoinManifest(make_fingerprint(), events=[SEAL_R])
        reseal = dict(SEAL_R, placed=99)
        m.apply(reseal)
        assert m.sealed("r")["placed"] == 99
        assert m.sealed("s") is None

    def test_unknown_event_type_is_rejected_at_apply(self):
        m = JoinManifest(make_fingerprint())
        with pytest.raises(ValueError):
            m.apply({"type": "time-travel"})


class TestRoundTrip:
    def test_bytes_round_trip(self):
        m = JoinManifest(make_fingerprint(), events=EVENTS)
        loaded = JoinManifest.from_bytes(m.to_bytes())
        assert loaded.fingerprint == m.fingerprint
        assert loaded.events == m.events
        assert loaded.state == STATE_COMPLETE
        assert not loaded.recovered_torn_tail

    def test_empty_event_log_round_trips(self):
        m = JoinManifest(make_fingerprint())
        loaded = JoinManifest.from_bytes(m.to_bytes())
        assert loaded.events == []
        assert loaded.state == STATE_CREATED


class TestLoaderContract:
    """An intact prefix, or a typed error — never wrong state."""

    def test_torn_tail_recovers_the_event_prefix(self, tmp_path):
        m = JoinManifest(make_fingerprint(), events=EVENTS)
        path = tmp_path / "manifest.bin"
        path.write_bytes(m.to_bytes())
        assert tear_tail(path)
        loaded = JoinManifest.from_bytes(path.read_bytes(), label=str(path))
        assert loaded.recovered_torn_tail
        assert loaded.events == EVENTS[:-1]
        assert loaded.state == STATE_MERGING  # the complete event was torn

    def test_mid_log_damage_is_a_typed_error(self, tmp_path):
        m = JoinManifest(make_fingerprint(), events=EVENTS)
        path = tmp_path / "manifest.bin"
        path.write_bytes(m.to_bytes())
        # Damage an early frame; later intact frames prove it is not a torn
        # tail, so the loader must refuse the whole file.
        tear_frame(path, 1)
        with pytest.raises(ManifestCorruptionError):
            JoinManifest.from_bytes(path.read_bytes(), label=str(path))

    def test_empty_bytes_are_a_typed_error(self):
        with pytest.raises(ManifestCorruptionError):
            JoinManifest.from_bytes(b"")

    def test_wrong_header_type_is_a_typed_error(self):
        bad = pack_frame(_encode({"type": "not-a-manifest", "version": 1,
                                  "fingerprint": {}}))
        with pytest.raises(ManifestCorruptionError):
            JoinManifest.from_bytes(bad)

    def test_wrong_version_is_a_typed_error(self):
        fp = make_fingerprint()
        bad = pack_frame(_encode({
            "type": "pbsm-join-manifest",
            "version": MANIFEST_VERSION + 1,
            "fingerprint": fp.to_dict(),
        }))
        with pytest.raises(ManifestCorruptionError):
            JoinManifest.from_bytes(bad)

    def test_crc_valid_garbage_event_is_a_typed_error(self):
        m = JoinManifest(make_fingerprint())
        data = m.to_bytes() + pack_frame(b"not json at all")
        with pytest.raises(ManifestCorruptionError):
            JoinManifest.from_bytes(data)

    def test_crc_valid_unknown_event_type_is_a_typed_error(self):
        m = JoinManifest(make_fingerprint())
        data = m.to_bytes() + pack_frame(_encode({"type": "bogus"}))
        with pytest.raises(ManifestCorruptionError):
            JoinManifest.from_bytes(data)

    def test_error_carries_path_and_frame(self):
        m = JoinManifest(make_fingerprint())
        data = m.to_bytes() + pack_frame(_encode({"type": "bogus"}))
        with pytest.raises(ManifestCorruptionError) as exc_info:
            JoinManifest.from_bytes(data, label="somewhere/manifest.bin")
        assert exc_info.value.path == "somewhere/manifest.bin"
        assert exc_info.value.frame_index == 1

    def test_every_accepted_event_type_round_trips(self):
        assert set(EVENT_TYPES) == {"spills_sealed", "phase", "complete"}
        for event in EVENTS:
            assert event["type"] in EVENT_TYPES
