"""Kill the coordinator at every distinct checkpoint state, then resume.

The invariant under test is the tentpole's: a run that is killed after
checkpoint ordinal N and then resumed produces the **byte-identical**
sorted feature-id pair set of an uninterrupted serial join — for every N,
under worker-fault plans, with torn logs, and across repeated kills.

Checkpoint ordinal layout for a fresh run (8 partition pairs):
ordinal 1 = manifest init, 2/3 = the two spill seals, 4 = merging phase,
5..12 = the eight result commits, 13 = the complete event.
"""

import pytest

from repro import intersects
from repro.checkpoint import (
    RESULTS_FILENAME,
    CheckpointMismatchError,
    CheckpointStore,
    RunFingerprint,
    replay_result_log,
)
from repro.data import generate_hydrography, generate_roads
from repro.faults import CoordinatorKilledError, load_plan, tear_tail
from repro.parallel import ProcessPBSM, serial_feature_pairs

SCALE = 0.001
NUM_PARTITIONS = 8
WORKERS = 2

# >= 3 kill ordinals x >= 2 fault plans (the acceptance matrix): one kill
# in the partitioning prologue, one at the merging transition, one after
# results have committed.
KILL_ORDINALS = [2, 4, 6]
PLANS = ["none", "disk_error"]


@pytest.fixture(scope="module")
def workload():
    tuples_r = list(generate_roads(scale=SCALE))
    tuples_s = list(generate_hydrography(scale=SCALE))
    expected, _ = serial_feature_pairs(tuples_r, tuples_s, intersects)
    assert expected, "resume matrix needs a non-trivial workload"
    return tuples_r, tuples_s, expected


def make_engine(checkpoint_dir, plan_name="none", **kwargs):
    plan = load_plan(plan_name, seed=0, num_pairs=NUM_PARTITIONS)
    return ProcessPBSM(
        WORKERS,
        num_partitions=NUM_PARTITIONS,
        fault_plan=plan,
        checkpoint_dir=str(checkpoint_dir),
        **kwargs,
    )


def committed_indexes(checkpoint_dir):
    """Pair indexes durably committed in the (single) run's result log."""
    logs = list(checkpoint_dir.glob(f"run-*/{RESULTS_FILENAME}"))
    if not logs:
        return set()
    (log,) = logs
    committed, _torn = replay_result_log(log)
    return set(committed)


class TestKillResumeMatrix:
    @pytest.mark.parametrize("plan_name", PLANS)
    @pytest.mark.parametrize("kill_at", KILL_ORDINALS)
    def test_kill_then_resume_is_byte_identical(
        self, tmp_path, plan_name, kill_at, workload
    ):
        tuples_r, tuples_s, expected = workload
        engine = make_engine(tmp_path, plan_name,
                             kill_coordinator_after=kill_at)
        with pytest.raises(CoordinatorKilledError) as exc_info:
            engine.run(tuples_r, tuples_s, intersects)
        assert exc_info.value.ordinal == kill_at
        survived = committed_indexes(tmp_path)

        result = make_engine(tmp_path, plan_name).resume(
            tuples_r, tuples_s, intersects
        )
        assert result.pairs == expected
        # Exactly the durably committed pairs were adopted, none re-merged.
        assert set(result.resumed_pairs) == survived
        assert all(
            t.resumed == (t.index in survived) for t in result.tasks
        )
        if kill_at >= 4:
            # Both seals were durable before the kill: spills re-adopted.
            assert result.fault_summary.get("spill_sides_adopted") == 2

    def test_every_result_ordinal_resumes(self, tmp_path, workload):
        # Kill after each committed result in one run's lifetime: each
        # resume starts from one more adopted pair and ends identically.
        tuples_r, tuples_s, expected = workload
        for kill_at in range(5, 5 + 3):
            ckpt = tmp_path / f"at-{kill_at}"
            engine = make_engine(ckpt, kill_coordinator_after=kill_at)
            with pytest.raises(CoordinatorKilledError):
                engine.run(tuples_r, tuples_s, intersects)
            assert len(committed_indexes(ckpt)) == kill_at - 4
            result = make_engine(ckpt).resume(tuples_r, tuples_s, intersects)
            assert result.pairs == expected
            assert len(result.resumed_pairs) == kill_at - 4

    def test_double_kill_double_resume(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=2).run(
                tuples_r, tuples_s, intersects
            )
        # Second coordinator dies too — later, mid-merge.
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=7).resume(
                tuples_r, tuples_s, intersects
            )
        survived = committed_indexes(tmp_path)
        assert survived  # the second life committed results before dying
        result = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert set(result.resumed_pairs) == survived


class TestTornState:
    def test_torn_result_log_tail_requeues_only_the_torn_pair(
        self, tmp_path, workload
    ):
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=7).run(
                tuples_r, tuples_s, intersects
            )
        before = committed_indexes(tmp_path)
        assert len(before) == 3
        (log,) = tmp_path.glob(f"run-*/{RESULTS_FILENAME}")
        assert tear_tail(log)
        after = committed_indexes(tmp_path)
        assert len(after) == 2 and after < before

        result = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert set(result.resumed_pairs) == after
        assert result.fault_summary.get("torn_tail_recovered", 0) >= 1

    def test_torn_manifest_tail_recovers_the_prefix(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=6).run(
                tuples_r, tuples_s, intersects
            )
        (manifest,) = tmp_path.glob("run-*/manifest.bin")
        assert tear_tail(manifest)
        result = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert result.fault_summary.get("torn_tail_recovered", 0) >= 1

    def test_destroyed_manifest_restarts_but_stays_correct(
        self, tmp_path, workload
    ):
        # Mid-log damage means the manifest cannot be trusted at all: the
        # resume must discard it (and the result log with it) rather than
        # guess, then still converge to the right answer.
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=6).run(
                tuples_r, tuples_s, intersects
            )
        (manifest,) = tmp_path.glob("run-*/manifest.bin")
        manifest.write_bytes(b"\xff" * 64)
        result = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert result.resumed_pairs == []
        assert result.fault_summary.get("manifest_discarded") == 1


class TestResumeSemantics:
    def test_complete_run_resumes_without_remerging(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload
        first = make_engine(tmp_path).run(tuples_r, tuples_s, intersects)
        assert first.pairs == expected
        again = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert again.pairs == expected
        assert len(again.resumed_pairs) == NUM_PARTITIONS
        assert all(t.resumed for t in again.tasks)

    def test_run_discards_and_starts_over(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=6).run(
                tuples_r, tuples_s, intersects
            )
        assert committed_indexes(tmp_path)
        # run(), not resume(): "start over" must not adopt stale results.
        result = make_engine(tmp_path).run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert result.resumed_pairs == []

    def test_resume_refuses_a_different_joins_checkpoints(
        self, tmp_path, workload
    ):
        tuples_r, tuples_s, _expected = workload
        make_engine(tmp_path).run(tuples_r, tuples_s, intersects)
        with pytest.raises(CheckpointMismatchError):
            make_engine(tmp_path).resume(tuples_r[:-1], tuples_s, intersects)

    def test_resume_of_an_empty_directory_is_a_fresh_run(
        self, tmp_path, workload
    ):
        tuples_r, tuples_s, expected = workload
        result = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert result.resumed_pairs == []

    def test_worker_count_is_not_part_of_the_fingerprint(
        self, tmp_path, workload
    ):
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=6).run(
                tuples_r, tuples_s, intersects
            )
        survived = committed_indexes(tmp_path)
        plan = load_plan("none", seed=0, num_pairs=NUM_PARTITIONS)
        wider = ProcessPBSM(
            WORKERS * 2, num_partitions=NUM_PARTITIONS, fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        result = wider.resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert set(result.resumed_pairs) == survived

    def test_fingerprint_matches_engine_identity(self, tmp_path, workload):
        tuples_r, tuples_s, _expected = workload
        result = make_engine(tmp_path).run(tuples_r, tuples_s, intersects)
        fingerprint = RunFingerprint(
            count_r=len(tuples_r), count_s=len(tuples_s), crc_r=0, crc_s=0,
            predicate="intersects", num_partitions=NUM_PARTITIONS, config={},
        )
        # The run directory the engine created is named by the computed
        # fingerprint; a second store computes the same id from the same
        # inputs (full equality checked via the manifest round trip).
        assert result.checkpoint_run_id.startswith("run-")
        store_dirs = [p.name for p in tmp_path.glob("run-*")]
        assert store_dirs == [result.checkpoint_run_id]
        assert fingerprint.run_id != result.checkpoint_run_id  # crc matters


class TestChaosPlansEndToEnd:
    @pytest.mark.parametrize("seed", [1, 3, 5])
    def test_coordinator_kill_plan_then_resume(self, tmp_path, seed, workload):
        tuples_r, tuples_s, expected = workload
        plan = load_plan("coordinator_kill", seed=seed,
                         num_pairs=NUM_PARTITIONS)
        (ordinal,) = plan.coordinator_kill_ordinals
        engine = ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(CoordinatorKilledError) as exc_info:
            engine.run(tuples_r, tuples_s, intersects)
        assert exc_info.value.ordinal == ordinal
        # Resuming with the same plan must not re-arm the kill.
        result = engine.resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected

    def test_torn_manifest_plan_is_survivable_inline(self, tmp_path, workload):
        # A tear not followed by a kill is healed by the next atomic
        # rewrite; the run itself must already survive it.
        tuples_r, tuples_s, expected = workload
        plan = load_plan("torn_manifest", seed=1, num_pairs=NUM_PARTITIONS)
        engine = ProcessPBSM(
            WORKERS, num_partitions=NUM_PARTITIONS, fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        result = engine.run(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert result.fault_summary.get("injected_torn_manifests") == 1


class TestOrphanSweep:
    def test_resume_sweeps_a_dead_writers_temp_files(self, tmp_path, workload):
        tuples_r, tuples_s, expected = workload
        with pytest.raises(CoordinatorKilledError):
            make_engine(tmp_path, kill_coordinator_after=4).run(
                tuples_r, tuples_s, intersects
            )
        (spills,) = tmp_path.glob("run-*/spills")
        orphan = spills / "r_99.kp.tmp"
        orphan.write_bytes(b"partial write from a dead coordinator")
        result = make_engine(tmp_path).resume(tuples_r, tuples_s, intersects)
        assert result.pairs == expected
        assert not orphan.exists()
        assert result.fault_summary.get("orphan_spills_swept", 0) >= 1
