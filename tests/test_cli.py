"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "demo" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SIGMOD 1996" in out

    def test_demo_tiny(self, capsys):
        assert main(["demo", "--scale", "0.001", "--buffer-mb", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "intersecting pairs" in out
        assert "Partition road" in out

    def test_demo_json(self, capsys):
        args = ["demo", "--scale", "0.001", "--buffer-mb", "1.0", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["algorithm"] == "PBSM"
        assert document["scale"] == 0.001
        assert {p["name"] for p in document["phases"]} >= {
            "Partition road", "Partition hydro", "Merge Partitions", "Refinement"
        }

    def test_demo_seed_reproducible(self, capsys):
        def run(seed):
            assert main(["demo", "--scale", "0.001", "--buffer-mb", "1.0",
                         "--json", "--seed", str(seed)]) == 0
            return json.loads(capsys.readouterr().out)

        a, b, c = run(7), run(7), run(8)
        assert a["result_count"] == b["result_count"]
        assert a["candidates"] == b["candidates"]
        assert (a["result_count"], a["candidates"]) != (
            c["result_count"], c["candidates"]
        )

    def test_trace_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "trace_out"
        args = ["trace", "--scale", "0.001", "--buffer-mb", "1.0",
                "--out", str(out)]
        assert main(args) == 0
        text = capsys.readouterr().out
        assert "spans" in text

        lines = (out / "trace.jsonl").read_text().splitlines()
        assert lines
        names = {json.loads(line)["name"] for line in lines}
        assert {"Partition road", "Merge Partitions", "Refinement"} <= names

        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["algorithm"] == "PBSM"
        assert "pbsm.num_partitions" in metrics["metrics"]

        chrome = json.loads((out / "chrome_trace.json").read_text())
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])
        assert len(chrome["traceEvents"]) == len(lines)

    @pytest.mark.parametrize(
        "flags, expected",
        [
            ([], "PBSM"),
            (["--index-r"], "RTREE"),
            (["--index-r", "--index-s"], "RTREE"),
            (["--index-s"], "PBSM"),
        ],
    )
    def test_plan_scenarios(self, capsys, flags, expected):
        assert main(["plan", "--scale", "0.005", "--buffer-mb", "0.25", *flags]) == 0
        out = capsys.readouterr().out
        assert f"chosen algorithm: {expected}" in out


class TestParallelCLI:
    @pytest.mark.parametrize("backend", ["serial", "simulated", "process"])
    def test_backends_agree_via_cli(self, capsys, backend):
        args = ["parallel", "--backend", backend, "--workers", "2",
                "--scale", "0.002", "--json"]
        if backend != "serial":
            args.append("--verify")
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == backend
        assert document["result_count"] > 0
        assert document["wall_s"] > 0
        if backend != "serial":
            assert document["verified_against_serial"] is True

    def test_process_reports_tasks(self, capsys):
        assert main(["parallel", "--backend", "process", "--workers", "2",
                     "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "partition-pair tasks" in out
        assert "intersecting pairs" in out

    def test_seed_changes_workload(self, capsys):
        def run(seed):
            assert main(["parallel", "--backend", "serial", "--scale", "0.002",
                         "--seed", str(seed), "--json"]) == 0
            return json.loads(capsys.readouterr().out)

        a, b, c = run(7), run(7), run(8)
        assert a["result_count"] == b["result_count"]
        assert a["result_count"] != c["result_count"]


class TestChaosCLI:
    def test_none_plan_is_a_clean_survival(self, capsys):
        args = ["chaos", "--plan", "none", "--scale", "0.001",
                "--workers", "2", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["fault_summary"] == {}
        assert document["faults"]["injected"] == 0
        assert document["result_count"] == document["reference_count"]

    def test_torn_frame_plan_survives_with_tallies(self, capsys):
        args = ["chaos", "--plan", "torn_frame", "--scale", "0.001",
                "--workers", "2", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["faults"]["injected"] >= 1
        assert document["faults"]["quarantined"] == 1
        assert document["faults"]["degraded"] == 1

    def test_unknown_plan_exits_2(self, capsys):
        assert main(["chaos", "--plan", "thermonuclear"]) == 2
        assert "chaos:" in capsys.readouterr().err

    def test_hang_timeout_mismatch_exits_2(self, capsys):
        args = ["chaos", "--plan", "hang", "--timeout", "5.0",
                "--hang-s", "1.0"]
        assert main(args) == 2
        assert "never trip" in capsys.readouterr().err

    def test_bench_out_writes_schema_valid_faults_block(self, capsys, tmp_path):
        from repro.obs.bench import load_bench_file

        out = tmp_path / "BENCH_chaos.json"
        args = ["chaos", "--plan", "disk_error", "--scale", "0.001",
                "--workers", "2", "--json", "--bench-out", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        document = load_bench_file(out)  # re-validates against the schema
        faults = document["records"][0]["faults"]
        assert faults["survived"] is True
        assert faults["injected"] >= 1
        assert faults["plan"]["spec"]["disk_read_errors"] == 2

    def test_committed_plan_file_resolves(self, capsys):
        from pathlib import Path

        plan_path = (Path(__file__).resolve().parents[1]
                     / "benchmarks" / "faultplans" / "combined.json")
        args = ["chaos", "--plan", str(plan_path),
                "--scale", "0.001", "--workers", "2", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["plan"] == "combined"
