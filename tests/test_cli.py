"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "demo" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SIGMOD 1996" in out

    def test_demo_tiny(self, capsys):
        assert main(["demo", "--scale", "0.001", "--buffer-mb", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "intersecting pairs" in out
        assert "Partition road" in out

    @pytest.mark.parametrize(
        "flags, expected",
        [
            ([], "PBSM"),
            (["--index-r"], "RTREE"),
            (["--index-r", "--index-s"], "RTREE"),
            (["--index-s"], "PBSM"),
        ],
    )
    def test_plan_scenarios(self, capsys, flags, expected):
        assert main(["plan", "--scale", "0.005", "--buffer-mb", "0.25", *flags]) == 0
        out = capsys.readouterr().out
        assert f"chosen algorithm: {expected}" in out
