"""Tests for the ``python -m repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main


class TestCLI:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "demo" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SIGMOD 1996" in out

    def test_demo_tiny(self, capsys):
        assert main(["demo", "--scale", "0.001", "--buffer-mb", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "intersecting pairs" in out
        assert "Partition road" in out

    def test_demo_json(self, capsys):
        args = ["demo", "--scale", "0.001", "--buffer-mb", "1.0", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["algorithm"] == "PBSM"
        assert document["scale"] == 0.001
        assert {p["name"] for p in document["phases"]} >= {
            "Partition road", "Partition hydro", "Merge Partitions", "Refinement"
        }

    def test_demo_seed_reproducible(self, capsys):
        def run(seed):
            assert main(["demo", "--scale", "0.001", "--buffer-mb", "1.0",
                         "--json", "--seed", str(seed)]) == 0
            return json.loads(capsys.readouterr().out)

        a, b, c = run(7), run(7), run(8)
        assert a["result_count"] == b["result_count"]
        assert a["candidates"] == b["candidates"]
        assert (a["result_count"], a["candidates"]) != (
            c["result_count"], c["candidates"]
        )

    def test_trace_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "trace_out"
        args = ["trace", "--scale", "0.001", "--buffer-mb", "1.0",
                "--out", str(out)]
        assert main(args) == 0
        text = capsys.readouterr().out
        assert "spans" in text

        lines = (out / "trace.jsonl").read_text().splitlines()
        assert lines
        names = {json.loads(line)["name"] for line in lines}
        assert {"Partition road", "Merge Partitions", "Refinement"} <= names

        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["algorithm"] == "PBSM"
        assert "pbsm.num_partitions" in metrics["metrics"]

        chrome = json.loads((out / "chrome_trace.json").read_text())
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])
        assert len(chrome["traceEvents"]) == len(lines)

    @pytest.mark.parametrize(
        "flags, expected",
        [
            ([], "PBSM"),
            (["--index-r"], "RTREE"),
            (["--index-r", "--index-s"], "RTREE"),
            (["--index-s"], "PBSM"),
        ],
    )
    def test_plan_scenarios(self, capsys, flags, expected):
        assert main(["plan", "--scale", "0.005", "--buffer-mb", "0.25", *flags]) == 0
        out = capsys.readouterr().out
        assert f"chosen algorithm: {expected}" in out


class TestParallelCLI:
    @pytest.mark.parametrize("backend", ["serial", "simulated", "process"])
    def test_backends_agree_via_cli(self, capsys, backend):
        args = ["parallel", "--backend", backend, "--workers", "2",
                "--scale", "0.002", "--json"]
        if backend != "serial":
            args.append("--verify")
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == backend
        assert document["result_count"] > 0
        assert document["wall_s"] > 0
        if backend != "serial":
            assert document["verified_against_serial"] is True

    def test_process_reports_tasks(self, capsys):
        assert main(["parallel", "--backend", "process", "--workers", "2",
                     "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "partition-pair tasks" in out
        assert "intersecting pairs" in out

    def test_seed_changes_workload(self, capsys):
        def run(seed):
            assert main(["parallel", "--backend", "serial", "--scale", "0.002",
                         "--seed", str(seed), "--json"]) == 0
            return json.loads(capsys.readouterr().out)

        a, b, c = run(7), run(7), run(8)
        assert a["result_count"] == b["result_count"]
        assert a["result_count"] != c["result_count"]


class TestChaosCLI:
    def test_none_plan_is_a_clean_survival(self, capsys):
        args = ["chaos", "--plan", "none", "--scale", "0.001",
                "--workers", "2", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["fault_summary"] == {}
        assert document["faults"]["injected"] == 0
        assert document["result_count"] == document["reference_count"]

    def test_torn_frame_plan_survives_with_tallies(self, capsys):
        args = ["chaos", "--plan", "torn_frame", "--scale", "0.001",
                "--workers", "2", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["faults"]["injected"] >= 1
        assert document["faults"]["quarantined"] == 1
        assert document["faults"]["degraded"] == 1

    def test_unknown_plan_exits_2(self, capsys):
        assert main(["chaos", "--plan", "thermonuclear"]) == 2
        assert "chaos:" in capsys.readouterr().err

    def test_hang_timeout_mismatch_exits_2(self, capsys):
        args = ["chaos", "--plan", "hang", "--timeout", "5.0",
                "--hang-s", "1.0"]
        assert main(args) == 2
        assert "never trip" in capsys.readouterr().err

    def test_bench_out_writes_schema_valid_faults_block(self, capsys, tmp_path):
        from repro.obs.bench import load_bench_file

        out = tmp_path / "BENCH_chaos.json"
        args = ["chaos", "--plan", "disk_error", "--scale", "0.001",
                "--workers", "2", "--json", "--bench-out", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        document = load_bench_file(out)  # re-validates against the schema
        faults = document["records"][0]["faults"]
        assert faults["survived"] is True
        assert faults["injected"] >= 1
        assert faults["plan"]["spec"]["disk_read_errors"] == 2

    def test_committed_plan_file_resolves(self, capsys):
        from pathlib import Path

        plan_path = (Path(__file__).resolve().parents[1]
                     / "benchmarks" / "faultplans" / "combined.json")
        args = ["chaos", "--plan", str(plan_path),
                "--scale", "0.001", "--workers", "2", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["plan"] == "combined"


class TestFlightRecorderCLI:
    def _chaos_run(self, tmp_path, name="run"):
        out = str(tmp_path / name)
        args = ["chaos", "--plan", "worker_faults", "--seed", "42",
                "--scale", "0.001", "--workers", "2", "--out", out]
        assert main(args) == 0
        return out

    def test_chaos_out_writes_all_artifacts(self, capsys, tmp_path):
        out = Path(self._chaos_run(tmp_path))
        assert "flight recorder" in capsys.readouterr().out
        for name in ("journal.jsonl", "trace.jsonl", "chrome_trace.json",
                     "metrics.json"):
            assert (out / name).exists(), name
        events = json.loads((out / "chrome_trace.json").read_text())
        phases = {e["ph"] for e in events["traceEvents"]}
        assert "i" in phases  # fault instants alongside the X spans

    def test_chaos_then_report_names_fault_pairs(self, capsys, tmp_path):
        out = self._chaos_run(tmp_path)
        capsys.readouterr()
        assert main(["report", out]) == 0
        report = capsys.readouterr().out
        assert "# Run report" in report
        # worker_faults @ seed 42 / 8 pairs: the planned injection points.
        assert "`disk_read_error` (pair 0, attempt 0)" in report
        assert "`slow_task` (pair 4, attempt 0)" in report
        assert "`worker_crash` (pair 7, attempt 0)" in report
        assert "Stragglers" in report

    def test_two_same_seed_reports_are_byte_identical(self, capsys, tmp_path):
        def render(name):
            out = self._chaos_run(tmp_path, name)
            capsys.readouterr()
            assert main(["report", out]) == 0
            return capsys.readouterr().out

        assert render("a") == render("b")

    def test_report_timings_sections_are_opt_in(self, capsys, tmp_path):
        out = self._chaos_run(tmp_path)
        capsys.readouterr()
        assert main(["report", out]) == 0
        default = capsys.readouterr().out
        assert main(["report", out, "--timings"]) == 0
        timed = capsys.readouterr().out
        assert "Measured timings" not in default
        assert "Measured timings (not deterministic)" in timed
        assert timed.startswith(default.rstrip("\n"))

    def test_report_json(self, capsys, tmp_path):
        out = self._chaos_run(tmp_path)
        capsys.readouterr()
        assert main(["report", out, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == "process"
        assert {r["kind"] for r in document["fault_ledger"]} == {
            "disk_read_error", "slow_task", "worker_crash"
        }

    def test_report_missing_journal_exits_2(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "journal.jsonl" in capsys.readouterr().err

    def test_parallel_out_writes_journal(self, capsys, tmp_path):
        out = str(tmp_path / "prun")
        assert main(["parallel", "--workers", "2", "--scale", "0.002",
                     "--out", out]) == 0
        assert "run journal" in capsys.readouterr().out
        lines = (Path(out) / "journal.jsonl").read_text().splitlines()
        types = [json.loads(line)["type"] for line in lines]
        assert types[0] == "run_started" and types[-1] == "run_finished"
        assert "task_finished" in types

    def test_parallel_live_streams_progress(self, capsys):
        assert main(["parallel", "--workers", "2", "--scale", "0.002",
                     "--live"]) == 0
        out = capsys.readouterr().out
        assert "[live]" in out
        assert "tasks scheduled" in out
        assert "done (" in out

    def test_live_rejected_for_serial_backend(self, capsys):
        assert main(["parallel", "--backend", "serial", "--live"]) == 2
        assert "scheduled backend" in capsys.readouterr().err

    def test_simulated_backend_journals_nodes(self, capsys, tmp_path):
        out = str(tmp_path / "sim")
        assert main(["parallel", "--backend", "simulated", "--workers", "3",
                     "--scale", "0.002", "--out", out]) == 0
        lines = (Path(out) / "journal.jsonl").read_text().splitlines()
        types = [json.loads(line)["type"] for line in lines]
        assert types.count("node_finished") == 3


class TestCheckpointCLI:
    def test_parallel_resume_without_dir_exits_2(self, capsys):
        assert main(["parallel", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_parallel_checkpoint_needs_process_backend(self, capsys):
        assert main(["parallel", "--backend", "serial",
                     "--checkpoint-dir", "x"]) == 2
        assert "process" in capsys.readouterr().err

    def test_parallel_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        base = ["parallel", "--backend", "process", "--workers", "2",
                "--scale", "0.001", "--checkpoint-dir", ckpt,
                "--verify", "--json"]
        assert main(base) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["verified_against_serial"] is True
        assert first["checkpoint_run_id"].startswith("run-")
        assert first["resumed_pairs"] == []

        assert main(base + ["--resume"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["verified_against_serial"] is True
        assert second["checkpoint_run_id"] == first["checkpoint_run_id"]
        assert len(second["resumed_pairs"]) == second["tasks"]

    def test_chaos_kill_without_dir_exits_2(self, capsys):
        assert main(["chaos", "--plan", "none",
                     "--kill-coordinator-after", "3"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_chaos_checkpoint_plan_without_dir_exits_2(self, capsys):
        assert main(["chaos", "--plan", "coordinator_kill", "--seed", "3"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_chaos_bad_kill_ordinal_exits_2(self, capsys):
        assert main(["chaos", "--plan", "none", "--checkpoint-dir", "x",
                     "--kill-coordinator-after", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_chaos_soft_kill_auto_resumes_in_one_invocation(
        self, capsys, tmp_path
    ):
        ckpt = str(tmp_path / "ckpt")
        args = ["chaos", "--plan", "none", "--scale", "0.001",
                "--workers", "2", "--checkpoint-dir", ckpt,
                "--kill-coordinator-after", "6", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["coordinator_killed_at"] == 6
        # Ordinals 5 and 6 committed two results before the kill; the
        # auto-resume adopted exactly those.
        assert len(document["resumed_pairs"]) == 2
        assert document["faults"]["coordinator_killed_at"] == 6
        assert document["faults"]["resumed_pairs"] == 2

    def test_chaos_coordinator_kill_plan_auto_resumes(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        args = ["chaos", "--plan", "coordinator_kill", "--seed", "3",
                "--scale", "0.001", "--workers", "2",
                "--checkpoint-dir", ckpt, "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["survived"] is True
        assert document["coordinator_killed_at"] is not None

    def test_checkpoints_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["checkpoints", "list",
                     "--dir", str(tmp_path / "nope")]) == 2
        assert "no such directory" in capsys.readouterr().err

    def test_checkpoints_unknown_run_exits_2(self, capsys, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        for action in ("inspect", "gc"):
            assert main(["checkpoints", action, "run-ffffffffffff",
                         "--dir", str(tmp_path)]) == 2
            assert "unknown run id" in capsys.readouterr().err

    def test_checkpoints_inspect_needs_run_id(self, capsys, tmp_path):
        assert main(["checkpoints", "inspect", "--dir", str(tmp_path)]) == 2
        assert "needs a run id" in capsys.readouterr().err

    def test_checkpoints_list_inspect_gc_lifecycle(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        assert main(["parallel", "--backend", "process", "--workers", "2",
                     "--scale", "0.001", "--checkpoint-dir", str(ckpt),
                     "--json"]) == 0
        run_id = json.loads(capsys.readouterr().out)["checkpoint_run_id"]

        assert main(["checkpoints", "list", "--dir", str(ckpt),
                     "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [i["run_id"] for i in listed] == [run_id]
        assert listed[0]["state"] == "complete"

        assert main(["checkpoints", "inspect", run_id,
                     "--dir", str(ckpt), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["pairs_done"] == info["pairs_total"]
        assert info["bytes_total"] > 0

        assert main(["checkpoints", "gc", "--dir", str(ckpt), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == [run_id]
        assert report["bytes_freed"] > 0

        assert main(["checkpoints", "list", "--dir", str(ckpt)]) == 0
        assert "no checkpointed runs" in capsys.readouterr().out

    def test_checkpoints_gc_dry_run_previews_without_deleting(
        self, capsys, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        assert main(["parallel", "--backend", "process", "--workers", "2",
                     "--scale", "0.001", "--checkpoint-dir", str(ckpt),
                     "--json"]) == 0
        run_id = json.loads(capsys.readouterr().out)["checkpoint_run_id"]

        assert main(["checkpoints", "gc", "--dir", str(ckpt),
                     "--dry-run", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True
        assert report["removed"] == [run_id]
        assert report["bytes_freed"] > 0

        # Nothing was deleted: the run still lists, and the text-mode
        # rehearsal says "would remove" instead of "removed".
        assert main(["checkpoints", "list", "--dir", str(ckpt),
                     "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [i["run_id"] for i in listed] == [run_id]
        assert main(["checkpoints", "gc", "--dir", str(ckpt),
                     "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out

    def test_parallel_disk_budget_requires_process_backend(self, capsys):
        assert main(["parallel", "--backend", "serial",
                     "--disk-budget", "1000"]) == 2

    def test_checkpoints_gc_keeps_resumable_runs_by_default(
        self, capsys, tmp_path
    ):
        import os
        import subprocess
        import sys as _sys
        from pathlib import Path

        ckpt = tmp_path / "ckpt"
        # Interrupt a run (real SIGKILL, in a subprocess) so its
        # checkpoints stay resumable.
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [_sys.executable, "-m", "repro", "chaos", "--plan", "none",
             "--scale", "0.001", "--workers", "2",
             "--checkpoint-dir", str(ckpt),
             "--kill-coordinator-after", "4", "--kill-hard"],
            capture_output=True, env=env,
        )
        assert proc.returncode == -9  # SIGKILL: a real coordinator death

        assert main(["checkpoints", "gc", "--dir", str(ckpt), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == [] and len(report["kept"]) == 1

        assert main(["checkpoints", "gc", "--dir", str(ckpt), "--all",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["removed"]) == 1


def write_serve_journal(root, latencies):
    """A minimal serve root: one query_received/query_done per latency."""
    root.mkdir(parents=True, exist_ok=True)
    lines = []
    seq = 0
    for i, latency in enumerate(latencies):
        seq += 1
        lines.append({"seq": seq, "t": 0.1 * seq, "type": "query_received",
                      "query": f"query-{i:04d}", "dataset": "road_hydro",
                      "seed": 7})
        seq += 1
        lines.append({"seq": seq, "t": 0.1 * seq, "type": "query_done",
                      "query": f"query-{i:04d}", "source": "miss",
                      "latency_s": latency})
    with (root / "serve.jsonl").open("w") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return root


class TestRunsCLI:
    def test_list_show_and_determinism(self, capsys, tmp_path):
        write_serve_journal(tmp_path / "runA", [0.1, 0.2])
        write_serve_journal(tmp_path / "runB", [0.3])

        assert main(["runs", "list", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert main(["runs", "list", str(tmp_path)]) == 0
        assert capsys.readouterr().out == first  # byte-identical
        assert "runA" in first and "runB" in first

        assert main(["runs", "show", str(tmp_path), "runA", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "serve"
        assert record["metrics"]["queries_done"] == 2

        assert main(["runs", "show", str(tmp_path), "missing"]) == 2
        assert "missing" in capsys.readouterr().err

    def test_compare_is_deterministic_and_gates(self, capsys, tmp_path):
        fast = write_serve_journal(tmp_path / "fast", [0.1, 0.1, 0.1])
        slow = write_serve_journal(tmp_path / "slow", [0.4, 0.5, 0.6])

        assert main(["runs", "compare", str(fast), str(slow)]) == 0
        first = capsys.readouterr().out
        assert main(["runs", "compare", str(fast), str(slow)]) == 0
        assert capsys.readouterr().out == first
        assert "# runs compare" in first
        assert "latency_p50_s" in first

        # The seeded regression trips the gate (exit 4)...
        assert main(["runs", "compare", str(fast), str(slow),
                     "--gate", "latency_p50_s", "--threshold", "0.2"]) == 4
        assert "REGRESSION" in capsys.readouterr().out
        # ...and an identical pair passes it.
        assert main(["runs", "compare", str(fast), str(fast),
                     "--gate", "latency_p50_s", "--threshold", "0.2"]) == 0
        capsys.readouterr()

    def test_compare_json_and_metric_restriction(self, capsys, tmp_path):
        fast = write_serve_journal(tmp_path / "fast", [0.1])
        slow = write_serve_journal(tmp_path / "slow", [0.2])
        assert main(["runs", "compare", str(fast), str(slow),
                     "--metric", "latency_p50_s", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        rows = document["rows"]
        assert [r["metric"] for r in rows] == ["latency_p50_s"]
        assert rows[0]["ratio"] == 2.0

    def test_compare_unusable_artifact_exits_2(self, capsys, tmp_path):
        fast = write_serve_journal(tmp_path / "fast", [0.1])
        assert main(["runs", "compare", str(fast),
                     str(tmp_path / "nowhere")]) == 2
        assert "nowhere" in capsys.readouterr().err

    def test_trend_gates_a_growing_metric(self, capsys, tmp_path):
        for i, latency in enumerate([0.1, 0.2, 0.4]):
            write_serve_journal(tmp_path / f"run{i}", [latency] * 2)
        args = ["runs", "compare", str(tmp_path), "--trend",
                "--metric", "latency_p50_s"]
        assert main(args + ["--threshold", "10.0"]) == 0
        out = capsys.readouterr().out
        assert "# runs trend" in out and "slope" in out
        assert main(args + ["--threshold", "0.05"]) == 4
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_needs_enough_points(self, capsys, tmp_path):
        write_serve_journal(tmp_path / "only", [0.1])
        assert main(["runs", "compare", str(tmp_path), "--trend",
                     "--metric", "latency_p50_s", "--kind", "serve"]) == 2
        assert "needs at least 2" in capsys.readouterr().err


class TestTopCLI:
    def test_once_renders_a_frame_from_a_port_file(self, capsys, tmp_path):
        from repro.serve import JoinServer

        server = JoinServer(tmp_path / "cache", tmp_path / "out", workers=2)
        host, port = server.start()
        port_file = tmp_path / "port.txt"
        port_file.write_text(f"{port}\n")
        try:
            from repro.serve import ServeClient

            with ServeClient(host, port) as client:
                assert client.join(dataset="road_hydro", scale=0.003,
                                   workers=2)["ok"]
            server.sampler.sample()
            assert main(["top", str(port_file), "--once"]) == 0
            frame = capsys.readouterr().out
        finally:
            server.shutdown()
        assert "repro serve" in frame
        assert "completed=1" in frame
        assert "slow log" in frame

    def test_no_port_source_exits_2(self, capsys):
        assert main(["top"]) == 2
        assert "port" in capsys.readouterr().err

    def test_dead_server_exits_1(self, capsys, tmp_path):
        port_file = tmp_path / "port.txt"
        port_file.write_text("1\n")  # nothing listens on port 1
        assert main(["top", str(port_file), "--once"]) == 1
        assert capsys.readouterr().err
