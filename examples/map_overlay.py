#!/usr/bin/env python3
"""Map overlay: materialise road/river crossing points.

The paper's §1 motivates spatial joins with *map overlay* — combining two
maps into a third.  This example runs the Road x Hydrography join with each
of the three algorithms the paper evaluates (verifying they agree), then
uses the computational-geometry kernel to compute the actual crossing
coordinates, i.e. the derived "bridges needed" layer.

Run:  python examples/map_overlay.py
"""

from repro import (
    Database,
    IndexedNestedLoopsJoin,
    PBSMJoin,
    RTreeJoin,
    intersects,
)
from repro.data import make_tiger_datasets
from repro.geometry import segment_intersection_point


def crossing_points(road_geom, river_geom, precision=1e-7):
    """Distinct coordinates where two polylines cross.

    Features clipped at the universe boundary can run collinearly for
    several segments, so nearby duplicates are collapsed on a grid of
    ``precision`` degrees.
    """
    seen = set()
    points = []
    for p1, p2 in zip(road_geom.points, road_geom.points[1:]):
        for p3, p4 in zip(river_geom.points, river_geom.points[1:]):
            pt = segment_intersection_point(p1, p2, p3, p4)
            if pt is None:
                continue
            key = (round(pt[0] / precision), round(pt[1] / precision))
            if key not in seen:
                seen.add(key)
                points.append(pt)
    return points


def main() -> None:
    db = Database(buffer_mb=8.0)
    rels = make_tiger_datasets(db, scale=0.005, include=("road", "hydro"))
    roads, rivers = rels["road"], rels["hydro"]

    print("running the three join algorithms of the paper's evaluation...")
    runs = {}
    for name, algo in (
        ("PBSM", PBSMJoin(db.pool)),
        ("R-tree join", RTreeJoin(db.pool)),
        ("indexed NL", IndexedNestedLoopsJoin(db.pool)),
    ):
        db.pool.clear()
        runs[name] = algo.run(roads, rivers, intersects)
        report = runs[name].report
        print(f"  {name:<12} {len(runs[name]):5d} pairs  "
              f"sim={report.total_s:7.2f}s  io%={100 * report.io_fraction:4.1f}")

    pair_sets = {name: tuple(res.pairs) for name, res in runs.items()}
    assert len(set(pair_sets.values())) == 1, "algorithms disagree!"
    print("all algorithms returned the identical result set\n")

    # Build the overlay layer: one point feature per crossing.
    overlay = []
    for oid_road, oid_river in runs["PBSM"].pairs:
        road = roads.fetch(oid_road)
        river = rivers.fetch(oid_river)
        for x, y in crossing_points(road.geom, river.geom):
            overlay.append((road.name, river.name, x, y))

    print(f"overlay layer: {len(overlay)} crossing points")
    for road_name, river_name, x, y in overlay[:8]:
        print(f"  ({x:9.4f}, {y:8.4f})  {road_name} x {river_name}")


if __name__ == "__main__":
    main()
