#!/usr/bin/env python3
"""Sequoia-style containment: which islands lie inside which land parcels?

Reproduces the paper's second query shape (§4.3): join the land-use
polygons with the island polygons, keeping pairs where the island is
*contained* in the parcel — e.g. a lake inside a park.  Also demonstrates
the §4.4 [BKSS94] refinement optimisation: caching a maximal enclosed
rectangle (MER) per parcel lets many candidates skip the O(n^2) exact
containment test.

Run:  python examples/landuse_containment.py
"""

import time

from repro import Database, PBSMJoin, contains
from repro.core import ContainsWithFilters
from repro.data import make_sequoia_datasets


def main() -> None:
    db = Database(buffer_mb=8.0)
    rels = make_sequoia_datasets(db, scale=0.02)
    parcels, islands = rels["polygon"], rels["island"]
    print(f"{len(parcels)} land-use parcels "
          f"(avg {parcels.catalog.avg_points:.0f} pts), "
          f"{len(islands)} islands (avg {islands.catalog.avg_points:.0f} pts)")

    # --- the paper's configuration: naive O(n^2) containment ---------- #
    db.pool.clear()
    t0 = time.perf_counter()
    naive = PBSMJoin(db.pool).run(parcels, islands, contains)
    naive_wall = time.perf_counter() - t0
    refinement_share = (
        naive.report.phase("Refinement").total_s / naive.report.total_s
    )
    print(f"\nnaive containment: {len(naive)} contained islands, "
          f"{naive_wall:.1f}s wall")
    print(f"refinement is {100 * refinement_share:.0f}% of the join cost "
          f"(the paper reports ~79% for PBSM on Sequoia)")

    # --- with the [BKSS94] MBR/MER pre-filters ------------------------ #
    db.pool.clear()
    filtered_predicate = ContainsWithFilters()
    t0 = time.perf_counter()
    filtered = PBSMJoin(db.pool).run(parcels, islands, filtered_predicate)
    filtered_wall = time.perf_counter() - t0

    assert filtered.pairs == naive.pairs
    print(f"\nMER-filtered containment: same {len(filtered)} results, "
          f"{filtered_wall:.1f}s wall")
    print(f"  candidates resolved by filters alone: "
          f"{filtered_predicate.filter_hits}")
    print(f"  candidates needing exact geometry:    "
          f"{filtered_predicate.exact_tests}")

    # A few human-readable results.
    print("\nsample containments:")
    for oid_parcel, oid_island in naive.pairs[:5]:
        parcel = parcels.fetch(oid_parcel)
        island = islands.fetch(oid_island)
        print(f"  {island.name} lies inside {parcel.name}")


if __name__ == "__main__":
    main()
