#!/usr/bin/env python3
"""Parallel PBSM — the paper's §5 future work, simulated.

The paper closes by observing that PBSM "will parallelize efficiently"
because its tiled spatial partitioning function doubles as a declustering
strategy for a shared-nothing machine [DNSS92-style virtual-processor
round robin].  This example simulates that design:

* both inputs are declustered across N virtual nodes with the same tiled
  partitioning function PBSM uses internally (objects spanning node
  boundaries are replicated, the "replicate the object entirely" choice of
  §5);
* each node runs an independent in-memory plane-sweep merge + refinement
  over its partitions only;
* the union of node outputs (after dedup) must equal the serial PBSM
  result, and the simulated parallel time is max(node times).

Run:  python examples/parallel_pbsm.py
"""

import time
from collections import defaultdict

from repro import Database, PBSMJoin, intersects
from repro.core import SpatialPartitioner, dedup_sorted_pairs
from repro.data import make_tiger_datasets
from repro.geometry import sweep_join


def main() -> None:
    num_nodes = 8
    db = Database(buffer_mb=8.0)
    rels = make_tiger_datasets(db, scale=0.01, include=("road", "hydro"))
    roads, rivers = rels["road"], rels["hydro"]

    # ---- serial reference ------------------------------------------- #
    db.pool.clear()
    serial = PBSMJoin(db.pool).run(roads, rivers, intersects)
    print(f"serial PBSM: {len(serial)} pairs")

    # ---- decluster with the tiled partitioning function -------------- #
    universe = roads.universe.union(rivers.universe)
    partitioner = SpatialPartitioner(
        universe, num_partitions=num_nodes, num_tiles=1024, scheme="hash"
    )
    node_roads = defaultdict(list)
    node_rivers = defaultdict(list)
    for oid, t in roads.scan():
        for node in partitioner.partitions_for_rect(t.mbr):
            node_roads[node].append((t.mbr, (oid, t)))
    for oid, t in rivers.scan():
        for node in partitioner.partitions_for_rect(t.mbr):
            node_rivers[node].append((t.mbr, (oid, t)))

    replication = (
        sum(len(v) for v in node_roads.values()) / len(roads)
        + sum(len(v) for v in node_rivers.values()) / len(rivers)
    ) / 2
    print(f"declustered over {num_nodes} nodes, "
          f"replication factor {replication:.3f}")

    # ---- each node joins its own data ------------------------------- #
    node_times = []
    all_pairs = []
    for node in range(num_nodes):
        t0 = time.perf_counter()
        candidates = []
        sweep_join(
            node_roads[node],
            node_rivers[node],
            lambda a, b: candidates.append((a, b)),
        )
        pairs = [
            (oid_r, oid_s)
            for (oid_r, t_r), (oid_s, t_s) in candidates
            if intersects(t_r, t_s)
        ]
        node_times.append(time.perf_counter() - t0)
        all_pairs.extend(pairs)
        print(f"  node {node}: {len(node_roads[node]):5d} roads, "
              f"{len(node_rivers[node]):5d} rivers -> {len(pairs):4d} pairs "
              f"({node_times[-1] * 1000:.0f} ms)")

    merged = dedup_sorted_pairs(sorted(all_pairs))
    assert merged == serial.pairs, "parallel result differs from serial!"

    total = sum(node_times)
    critical_path = max(node_times)
    print(f"\nparallel result identical to serial ({len(merged)} pairs)")
    print(f"sum of node work: {total * 1000:.0f} ms; "
          f"critical path: {critical_path * 1000:.0f} ms; "
          f"speedup at {num_nodes} nodes: {total / critical_path:.1f}x")


if __name__ == "__main__":
    main()
