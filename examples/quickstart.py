#!/usr/bin/env python3
"""Quickstart: run a PBSM spatial join end to end.

Loads a small synthetic TIGER workload (roads and rivers of a Wisconsin-like
state), joins them with PBSM on the *intersects* predicate, and prints the
result count plus the phase-by-phase cost report the paper's Table 4 uses.

Run:  python examples/quickstart.py
"""

from repro import Database, PBSMJoin, intersects
from repro.data import make_tiger_datasets


def main() -> None:
    # A database with an 8 MB buffer pool over the simulated disk.
    db = Database(buffer_mb=8.0)

    # 1% of the paper's TIGER cardinalities: ~4.6K roads, ~1.2K rivers.
    rels = make_tiger_datasets(db, scale=0.01, include=("road", "hydro"))
    roads, rivers = rels["road"], rels["hydro"]
    print(f"loaded {len(roads)} roads ({roads.size_bytes() / 1e6:.1f} MB), "
          f"{len(rivers)} hydrography features")

    # Joins start cold: flush the pool so load traffic doesn't help us.
    db.pool.clear()

    result = PBSMJoin(db.pool).run(roads, rivers, intersects)
    print(f"\n{len(result)} road/river crossings found")
    print(f"filter-step candidates: {result.report.candidates} "
          f"(exact tests pruned "
          f"{result.report.candidates - len(result)} false positives)\n")
    print(result.report.format_table())

    # Show a few of the joined feature pairs.
    print("\nsample results:")
    for oid_road, oid_river in result.pairs[:5]:
        road = roads.fetch(oid_road)
        river = rivers.fetch(oid_river)
        print(f"  {road.name} crosses {river.name}")


if __name__ == "__main__":
    main()
