#!/usr/bin/env python3
"""A complex query whose join inputs are intermediate results.

This is the paper's opening motivation, end to end: "This algorithm is
especially effective when neither of the inputs to the join have an index
on the joining attribute.  Such a situation could arise if both inputs to
the join are intermediate results in a complex query..."

The query below is

    SELECT r, h
    FROM   roads r, hydrography h
    WHERE  r.category-predicate            -- attribute selection
      AND  h.MBR overlaps :window          -- window selection
      AND  intersects(r.geom, h.geom)      -- the spatial join

Both selections produce *materialised intermediate results* with no
indices; the planner therefore chooses PBSM for the join, exactly as the
paper argues a spatial DBMS should.

Run:  python examples/complex_query.py
"""

from repro import Database, intersects
from repro.data import make_tiger_datasets
from repro.exec import Filter, RelationScan, SpatialJoin, WindowFilter
from repro.geometry import Rect


def main() -> None:
    # A deliberately small pool: if the intermediates fit in memory the
    # planner would (correctly) pick INL instead — the Figure-8 exception.
    db = Database(buffer_mb=0.25)
    rels = make_tiger_datasets(db, scale=0.01, include=("road", "hydro"))
    roads, hydro = rels["road"], rels["hydro"]
    print(f"base tables: {len(roads)} roads, {len(hydro)} hydrography features")

    # The "south-east quadrant" of the universe, as a query window.
    u = roads.universe
    cx, cy = u.center
    window = Rect(cx, u.yl, u.xu, cy)

    # Build the plan: two selections feeding a spatial join.
    major_roads = Filter(
        RelationScan(roads), lambda t: t.feature_id % 4 == 0
    )  # stand-in for a classification predicate
    local_waters = WindowFilter(RelationScan(hydro), window)
    join = SpatialJoin(db.pool, major_roads, local_waters, intersects)

    pairs = join.pairs()
    report = join.last_report
    assert report is not None

    left_count = len(join.left.relation())
    right_count = len(join.right.relation())
    print(f"intermediate results: {left_count} roads, {right_count} waters "
          "(materialised, no indices)")
    print(f"\nplanner chose: {report.notes['plan'].upper()}")
    print(f"  because: {report.notes['plan_reason']}")
    print(f"\n{len(pairs)} qualifying (road, water) pairs")
    print(report.format_table())

    print("\nsample rows:")
    for (_oid_r, road), (_oid_h, water) in pairs[:5]:
        print(f"  {road.name} crosses {water.name}")


if __name__ == "__main__":
    main()
