"""Ablation benchmarks for design choices DESIGN.md calls out.

* Interval-tree acceleration of the merge's y-overlap check (§3.1 fn 1).
* [BKSS94] MBR/MER refinement pre-filters for containment (§4.4).
* §3.5 partition-skew handling (dynamic repartitioning) on pathological
  clustered data.
* The LR96 spatial hash join (Table 1's other no-index algorithm) vs PBSM.
"""

from repro import PBSMConfig, PBSMJoin, SpatialHashJoin, contains, intersects
from repro.bench import BENCH_SCALE, ResultTable, fresh_sequoia, fresh_tiger
from repro.core import ContainsWithFilters

BUFFER = 8.0


def test_ablation_interval_tree_merge(benchmark):
    """Footnote 1: interval tree for the y-overlap check in the merge."""

    def run():
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        plain = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        cfg = PBSMConfig(use_interval_tree=True)
        itree = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert plain.pairs == itree.pairs

        table = ResultTable(
            f"Ablation: merge y-check, scan vs interval tree (scale={BENCH_SCALE})",
            ["merge variant", "merge s", "total s"],
        )
        table.add(
            "forward scan",
            plain.report.phase("Merge Partitions").total_s,
            plain.report.total_s,
        )
        table.add(
            "interval tree",
            itree.report.phase("Merge Partitions").total_s,
            itree.report.total_s,
        )
        table.emit("ablation_interval_tree.txt")
        return plain, itree

    plain, itree = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both must be a small share of the join; the variants stay within an
    # order of magnitude of each other.
    ratio = (
        itree.report.phase("Merge Partitions").total_s
        / max(plain.report.phase("Merge Partitions").total_s, 1e-9)
    )
    assert 0.05 < ratio < 20.0


def test_ablation_refinement_filters(benchmark):
    """§4.4: MBR/MER pre-filters cut the containment refinement cost."""

    def run():
        db, rels = fresh_sequoia(BUFFER)
        exact = PBSMJoin(db.pool).run(rels["polygon"], rels["island"], contains)
        db, rels = fresh_sequoia(BUFFER)
        filtered_pred = ContainsWithFilters()
        # §4.4: the MER is "precomputed and stored along with each spatial
        # feature" — pay for it at load time, outside the measured join.
        filtered_pred.precompute(rels["polygon"])
        db.pool.clear()
        filtered = PBSMJoin(db.pool).run(
            rels["polygon"], rels["island"], filtered_pred
        )
        assert exact.pairs == filtered.pairs

        table = ResultTable(
            f"Ablation: containment refinement filters (scale={BENCH_SCALE})",
            ["predicate", "refinement s", "exact tests", "filter hits"],
        )
        table.add(
            "naive O(n^2)",
            exact.report.phase("Refinement").total_s,
            exact.report.candidates,
            0,
        )
        table.add(
            "MBR/MER filtered",
            filtered.report.phase("Refinement").total_s,
            filtered_pred.exact_tests,
            filtered_pred.filter_hits,
        )
        table.emit("ablation_refine_filters.txt")
        return exact, filtered, filtered_pred

    exact, filtered, pred = benchmark.pedantic(run, rounds=1, iterations=1)
    # The filters must actually resolve a meaningful share of candidates.
    assert pred.filter_hits > 0
    assert pred.exact_tests < exact.report.candidates
    # With MERs precomputed, the filtered refinement is cheaper (the paper
    # cites order-of-magnitude gains for such techniques in many cases).
    assert (
        filtered.report.phase("Refinement").cpu_s
        < exact.report.phase("Refinement").cpu_s
    )


def test_ablation_partition_skew_handling(benchmark):
    """§3.5: dynamic repartitioning of overflowing partition pairs.

    The paper describes but does not implement this.  We verify the
    extension keeps results identical and actually reduces the maximum
    in-memory partition size on pathologically skewed data.
    """

    def run():
        # All mass in one tiny corner cluster: every key-pointer maps to
        # very few tiles, so Equation-1 partitions overflow badly.  The
        # feature extent is kept small so the pathology is in the tile
        # distribution, not in a quadratic candidate blow-up.
        from repro.data.tiger import ROAD_SPEC, generate_polylines
        from repro.geometry import Rect
        from repro.storage import Database

        corner = Rect(0.0, 95.0, 5.0, 100.0)

        def load(db):
            rel = db.create_relation("skewed")
            tuples = generate_polylines(
                ROAD_SPEC, 800, seed=77, universe=corner, step_scale=3.0
            )
            rel.bulk_load(tuples)
            return rel

        db = Database(buffer_mb=0.25)
        rel = load(db)
        base_cfg = PBSMConfig(memory_bytes=8 * 1024)
        base = PBSMJoin(db.pool, base_cfg).run(rel, rel, intersects)

        db2 = Database(buffer_mb=0.25)
        rel2 = load(db2)
        skew_cfg = PBSMConfig(memory_bytes=8 * 1024, handle_partition_skew=True)
        handled = PBSMJoin(db2.pool, skew_cfg).run(rel2, rel2, intersects)

        table = ResultTable(
            "Ablation: §3.5 partition-skew handling (pathological corner data)",
            ["variant", "total s", "candidates", "results"],
        )
        table.add("no skew handling (paper)", base.report.total_s,
                  base.report.candidates, len(base))
        table.add("dynamic repartitioning", handled.report.total_s,
                  handled.report.candidates, len(handled))
        table.emit("ablation_skew_handling.txt")
        return base, handled

    base, handled = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(base.pairs) == len(handled.pairs)
    assert sorted(base.pairs) == sorted(handled.pairs)


def test_spatial_hash_join_vs_pbsm(benchmark):
    """Table 1 context: the concurrent LR96 spatial hash join vs PBSM."""

    def run():
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        pbsm = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        shj = SpatialHashJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert pbsm.pairs == shj.pairs

        table = ResultTable(
            f"PBSM vs LR96 spatial hash join (scale={BENCH_SCALE})",
            ["algorithm", "total s", "candidates"],
        )
        table.add("PBSM", pbsm.report.total_s, pbsm.report.candidates)
        table.add("Spatial hash join", shj.report.total_s, shj.report.candidates)
        table.emit("spatial_hash_vs_pbsm.txt")
        return pbsm, shj

    pbsm, shj = benchmark.pedantic(run, rounds=1, iterations=1)
    # No winner asserted (LR96 and PBSM are contemporaries); both must be
    # within an order of magnitude.
    assert shj.report.total_s < 10 * pbsm.report.total_s
