"""Figure 4 — quality of the spatial partitioning function (TIGER roads).

The paper plots the coefficient of variation of the per-partition tuple
counts as the number of tiles grows, for hash vs round-robin tile mapping
and 4 vs 16 partitions.  Expected shape:

* all curves improve (drop) as tiles increase;
* hashing with many tiles is a good partitioning function (cov near 0);
* for a fixed tile count, 4 partitions balance better than 16;
* round robin shows jumps where tiles-per-row align with partitions.
"""

from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger
from repro.bench.harness import RESULTS_DIR
from repro.core import SCHEME_HASH, SCHEME_ROUND_ROBIN, profile_partitioning
from repro.obs.bench import write_bench_file

TILE_SWEEP = (25, 100, 400, 1000, 2000, 4000)

CURVES = {
    "h4": (SCHEME_HASH, 4),
    "h16": (SCHEME_HASH, 16),
    "r4": (SCHEME_ROUND_ROBIN, 4),
    "r16": (SCHEME_ROUND_ROBIN, 16),
}


def _skew_record(scheme: str, partitions: int, covs) -> dict:
    """One schema-valid record per Figure 4 curve.

    Partitioning quality has no join cost or I/O of its own, so the cost
    fields are structurally zero; the payload — the CoV trajectory the
    figure plots, and that ``repro report`` cross-checks — rides in
    ``notes``.
    """
    return {
        "algorithm": f"partitioning-{scheme}/{partitions}",
        "scale": BENCH_SCALE,
        "buffer_mb": 8.0,
        "total_s": 0.0,
        "cpu_s": 0.0,
        "io_s": 0.0,
        "candidates": 0,
        "result_count": 0,
        "phases": [],
        "counters": {"page_reads": 0, "page_writes": 0, "seeks": 0},
        "notes": {
            "scheme": scheme,
            "partitions": partitions,
            "tiles": list(TILE_SWEEP),
            "cov": [round(c, 6) for c in covs],
        },
    }


def test_fig4_partition_balance(benchmark):
    def run():
        db, rels = fresh_tiger(8.0, include=("road",))
        road = rels["road"]
        mbrs = [t.mbr for _oid, t in road.scan()]
        universe = road.universe
        table = ResultTable(
            f"Figure 4: partition balance, TIGER roads (scale={BENCH_SCALE})",
            ["tiles", "hash/4", "hash/16", "rrobin/4", "rrobin/16"],
        )
        curves = {key: [] for key in ("h4", "h16", "r4", "r16")}
        for tiles in TILE_SWEEP:
            h4 = profile_partitioning(mbrs, universe, 4, tiles, SCHEME_HASH).cov
            h16 = profile_partitioning(mbrs, universe, 16, tiles, SCHEME_HASH).cov
            r4 = profile_partitioning(mbrs, universe, 4, tiles, SCHEME_ROUND_ROBIN).cov
            r16 = profile_partitioning(
                mbrs, universe, 16, tiles, SCHEME_ROUND_ROBIN
            ).cov
            curves["h4"].append(h4)
            curves["h16"].append(h16)
            curves["r4"].append(r4)
            curves["r16"].append(r16)
            table.add(tiles, h4, h16, r4, r16)
        table.emit("fig4_partition_balance.txt")
        write_bench_file(
            "fig4_partition_balance",
            [
                _skew_record(scheme, partitions, curves[key])
                for key, (scheme, partitions) in CURVES.items()
            ],
            RESULTS_DIR,
        )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    # All partitioning functions improve as the number of tiles grows.
    for key in curves:
        assert curves[key][-1] < curves[key][0], key
    # With many hashed tiles, partitioning is good (paper: cov -> ~0.05).
    assert curves["h16"][-1] < 0.25
    # Fewer partitions balance better for a given tile count (coarse grids).
    assert curves["h4"][0] <= curves["h16"][0] + 0.05
