"""§5 future work — parallel PBSM speedup and the declustering trade-off.

The paper predicts PBSM "will parallelize efficiently" using its own tiled
partitioning function as the declustering strategy, and poses the
replication question: copy boundary objects entirely (more storage, no
remote fetches) or copy only their MBRs ([TY95]: less storage, remote
fetches during refinement).  This benchmark measures the speedup curve and
both sides of that trade.
"""

from repro import intersects
from repro.bench import BENCH_SCALE, ResultTable
from repro.bench.harness import _cached_tuples
from repro.parallel import (
    REPLICATE_MBRS,
    REPLICATE_OBJECTS,
    ParallelPBSM,
    serial_feature_pairs,
)

NODE_SWEEP = (1, 2, 4, 8)


def test_parallel_speedup_and_declustering(benchmark):
    def run():
        tuples_r = list(_cached_tuples("road", BENCH_SCALE / 2, False))
        tuples_s = list(_cached_tuples("hydro", BENCH_SCALE / 2, False))
        expected, serial_s = serial_feature_pairs(tuples_r, tuples_s, intersects)

        table = ResultTable(
            f"Parallel PBSM (scale={BENCH_SCALE / 2}), serial={serial_s:.2f}s",
            ["nodes", "scheme", "critical path s", "speedup vs serial",
             "storage factor R", "remote fetches"],
        )
        runs = {}
        for nodes in NODE_SWEEP:
            for scheme in (REPLICATE_OBJECTS, REPLICATE_MBRS):
                result = ParallelPBSM(nodes, scheme=scheme).run(
                    tuples_r, tuples_s, intersects
                )
                assert result.pairs == expected, (nodes, scheme)
                runs[(nodes, scheme)] = result
                table.add(
                    nodes,
                    scheme,
                    result.critical_path_s,
                    serial_s / result.critical_path_s,
                    result.storage_factor_r,
                    result.remote_fetches,
                )
        table.emit("parallel_pbsm.txt")
        return runs, serial_s

    runs, serial_s = benchmark.pedantic(run, rounds=1, iterations=1)

    # Speedup: 8 nodes must beat 1 node by a wide margin.
    one = runs[(1, REPLICATE_OBJECTS)].critical_path_s
    eight = runs[(8, REPLICATE_OBJECTS)].critical_path_s
    assert eight < one / 2.5

    # The declustering trade-off, §5: full replication stores more ...
    assert (
        runs[(8, REPLICATE_OBJECTS)].storage_factor_r
        == runs[(8, REPLICATE_MBRS)].storage_factor_r  # placement identical
    )
    # ... but never fetches remotely, while MBR-only replication does.
    assert runs[(8, REPLICATE_OBJECTS)].remote_fetches == 0
    assert runs[(8, REPLICATE_MBRS)].remote_fetches > 0
