"""Figure 13 — Sequoia polygon ⋈ island containment join.

Paper shape: PBSM 13-27% faster than the R-tree join and 17-114% faster
than INL; the refinement step dominates both PBSM (~79% of total) and the
R-tree join (~68%) because the exact containment test is the naive O(n^2)
polygon algorithm over 46/35-point polygons.
"""

from repro import (
    IndexedNestedLoopsJoin,
    PBSMJoin,
    RTreeJoin,
    contains,
)
from repro.bench import BENCH_SCALE, PAPER_BUFFER_MB, ResultTable, fresh_sequoia


def test_fig13_sequoia_sweep(benchmark):
    def run():
        results = {}
        for paper_mb in PAPER_BUFFER_MB:
            per_algo = {}
            for name in ("PBSM", "R-tree", "INL"):
                db, rels = fresh_sequoia(paper_mb)
                if name == "PBSM":
                    res = PBSMJoin(db.pool).run(rels["polygon"], rels["island"], contains)
                elif name == "R-tree":
                    res = RTreeJoin(db.pool).run(rels["polygon"], rels["island"], contains)
                else:
                    res = IndexedNestedLoopsJoin(db.pool).run(
                        rels["polygon"], rels["island"], contains
                    )
                per_algo[name] = res
            results[paper_mb] = per_algo
        table = ResultTable(
            f"Figure 13: Sequoia polygon x island containment (scale={BENCH_SCALE})",
            ["buffer (paper MB)", "PBSM (s)", "R-tree (s)", "INL (s)"],
        )
        for paper_mb, per_algo in sorted(results.items()):
            table.add(
                paper_mb,
                per_algo["PBSM"].report.total_s,
                per_algo["R-tree"].report.total_s,
                per_algo["INL"].report.total_s,
            )
        table.emit("fig13_sequoia.txt")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    counts = {
        len(res.pairs)
        for per_algo in results.values()
        for res in per_algo.values()
    }
    assert len(counts) == 1  # all algorithms agree

    for paper_mb, per_algo in results.items():
        pbsm = per_algo["PBSM"].report
        rtree = per_algo["R-tree"].report
        # PBSM is faster than the R-tree join at every buffer size.
        assert pbsm.total_s < rtree.total_s * 1.05, paper_mb
        # Refinement dominates both (paper: 79% / 68%).
        assert pbsm.phase("Refinement").total_s > 0.5 * pbsm.total_s
        assert rtree.phase("Refinement").total_s > 0.35 * rtree.total_s
