"""Figures 14 & 15 — joins in the presence of pre-existing indices (§4.5).

Six variants per query:

* PBSM (ignores indices)
* Rtree-2-Indices       — both indices pre-exist
* Rtree-1-LargeIdx      — index on the larger input (Road) pre-exists
* INL-1-LargeIdx        — same index, probed by INL
* Rtree-1-SmallIdx      — index on the smaller input pre-exists
* INL-1-SmallIdx        — same index, probed by INL

Paper shape: with both indices (or one on the larger input) the R-tree
join is best; with an index only on the smaller input PBSM is best; INL
overtakes Rtree-1-SmallIdx as the buffer grows.
"""


from repro import IndexedNestedLoopsJoin, PBSMJoin, RTreeJoin, intersects
from repro.bench import (
    BENCH_SCALE,
    PAPER_BUFFER_MB,
    ResultTable,
    fresh_tiger,
)
from repro.index import bulk_load_rstar

VARIANTS = (
    "PBSM",
    "Rtree-2-Indices",
    "Rtree-1-LargeIdx",
    "INL-1-LargeIdx",
    "Rtree-1-SmallIdx",
    "INL-1-SmallIdx",
)


def _run_variants(small_name: str):
    """Run all six variants for Road (large) x <small_name>."""
    results = {}
    for paper_mb in PAPER_BUFFER_MB:
        per_variant = {}
        for variant in VARIANTS:
            db, rels = fresh_tiger(paper_mb, include=("road", small_name))
            road, small = rels["road"], rels[small_name]
            # Pre-build whatever the variant assumes, then clear the cache:
            # a pre-existing index is on disk, not in the buffer pool.
            idx_large = idx_small = None
            if "2-Indices" in variant:
                idx_large = bulk_load_rstar(db.pool, road)
                idx_small = bulk_load_rstar(db.pool, small)
            elif "LargeIdx" in variant:
                idx_large = bulk_load_rstar(db.pool, road)
            elif "SmallIdx" in variant:
                idx_small = bulk_load_rstar(db.pool, small)
            db.pool.clear()
            db.pool.reset_counters()

            if variant == "PBSM":
                res = PBSMJoin(db.pool).run(road, small, intersects)
            elif variant.startswith("Rtree"):
                res = RTreeJoin(db.pool).run(
                    road, small, intersects, index_r=idx_large, index_s=idx_small
                )
            else:
                res = IndexedNestedLoopsJoin(db.pool).run(
                    road, small, intersects, index_r=idx_large, index_s=idx_small
                )
            per_variant[variant] = res
        results[paper_mb] = per_variant
    return results


def _emit(results, title, filename):
    table = ResultTable(
        title, ["buffer (paper MB)", *(f"{v} (s)" for v in VARIANTS)]
    )
    for paper_mb, per_variant in sorted(results.items()):
        table.add(
            paper_mb, *(per_variant[v].report.total_s for v in VARIANTS)
        )
    table.emit(filename)


def _check_common_shape(results):
    counts = {
        len(res.pairs)
        for per_variant in results.values()
        for res in per_variant.values()
    }
    assert len(counts) == 1

    smallest = min(results)
    for paper_mb, pv in results.items():
        t = {v: pv[v].report.total_s for v in VARIANTS}
        # With both indices pre-existing the R-tree join beats PBSM.
        assert t["Rtree-2-Indices"] < t["PBSM"], paper_mb
        # With the large index pre-existing, Rtree-1-LargeIdx also wins
        # (building the small index is cheap).
        assert t["Rtree-1-LargeIdx"] < t["PBSM"] * 1.1, paper_mb
        # With only the small index, PBSM beats the R-tree variant.  At the
        # smallest buffer the two come within a few percent in this
        # substrate (the paper's margin is CPU-driven at full scale; see
        # EXPERIMENTS.md), so a small tolerance applies there.
        slack = 1.15 if paper_mb == smallest else 1.0
        assert t["PBSM"] < t["Rtree-1-SmallIdx"] * slack, paper_mb


def test_fig14_road_hydro_with_indices(benchmark):
    def run():
        results = _run_variants("hydro")
        _emit(
            results,
            f"Figure 14: Road x Hydro with pre-existing indices (scale={BENCH_SCALE})",
            "fig14_road_hydro_indices.txt",
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _check_common_shape(results)
    # With only the (hydro) index on the smaller input, PBSM also beats INL
    # probing that index — the paper's summary claim for Figure 14.
    for paper_mb, pv in results.items():
        assert (
            pv["PBSM"].report.total_s < pv["INL-1-SmallIdx"].report.total_s
        ), paper_mb


def test_fig15_road_rail_with_indices(benchmark):
    def run():
        results = _run_variants("rail")
        _emit(
            results,
            f"Figure 15: Road x Rail with pre-existing indices (scale={BENCH_SCALE})",
            "fig15_road_rail_indices.txt",
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _check_common_shape(results)
    # Paper (Fig 15): with the small Rail index pre-existing, INL beats the
    # R-tree variant at every buffer size (the rail index fits in memory).
    # NOTE: in the paper PBSM still edges out INL-1-SmallIdx here; in our
    # substrate INL wins this corner because Python's per-probe CPU is
    # cheap relative to the simulated disk (see EXPERIMENTS.md), so that
    # single comparison is not asserted.
    for paper_mb, pv in results.items():
        assert (
            pv["INL-1-SmallIdx"].report.total_s
            < pv["Rtree-1-SmallIdx"].report.total_s * 1.2
        ), paper_mb
