"""Serving-tier throughput: open-loop arrivals against `repro serve`.

Starts an in-process :class:`repro.serve.JoinServer` (real TCP socket,
one shared worker pool, bounded admission) and fires a **zipf-skewed
query mix** at it with **open-loop exponential interarrivals** — every
query launches at its scheduled instant whether or not earlier ones
finished, which is what makes the admission bounds bite: when misses
pile up, late arrivals are *rejected* (``queue_full``), not silently
queued forever.

The mix and the arrival process are both seeded, so which query is hot,
which arrive back-to-back, and how many distinct joins exist are
deterministic; the latencies are measured wall-clock and are not.
``BENCH_serve_throughput.json`` therefore carries the deterministic
identity fields as top-level record values and quarantines every
measured number in ``notes`` with an explicit ``measured`` marker, the
same convention the speedup benchmarks use.

Asserted invariants:

* every completed response for the same query spec carries the same
  ``result_sha256`` — and it equals the digest of a one-shot
  ``parallel_join`` of that spec (served results are byte-identical to
  unserved ones);
* the cache works: hit rate > 0 and the client-observed **hit p50 is
  below the miss p50** (replaying a committed result log must beat
  running the join);
* admission accounting balances: admitted + rejected = offered.
"""

import math
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.bench import ResultTable
from repro.bench.harness import RESULTS_DIR
from repro.obs.bench import write_bench_file
from repro.parallel import parallel_join
from repro.serve import (
    JoinServer,
    QuerySpec,
    ServeClient,
    outcome_block,
    result_digest,
)

N_QUERIES = 24
ARRIVAL_RATE_QPS = 3.0
MIX_SEED = 1996
ZIPF_S = 1.1
"""Zipf skew exponent for the query mix: rank r drawn ∝ 1/(r+1)^s."""

SERVER_WORKERS = 2
MAX_INFLIGHT = 2
MAX_QUEUE = 3
TELEMETRY_INTERVAL_S = 0.25
"""The live sampler runs during the bench so the record can carry its
sampling footprint (tick count, peak queue/inflight) — the series stay
on the wire op."""

QUERY_MIX = [
    {"dataset": "road_hydro", "scale": 0.008, "predicate": "intersects"},
    {"dataset": "road_hydro", "scale": 0.006, "predicate": "intersects"},
    {"dataset": "road_rail", "scale": 0.008, "predicate": "intersects"},
    {"dataset": "landuse_island", "scale": 0.004, "predicate": "contains"},
    {"dataset": "road_hydro", "scale": 0.004, "predicate": "intersects"},
    {"dataset": "road_rail", "scale": 0.006, "predicate": "intersects"},
]
"""Distinct joins, hottest-first; zipf rank 0 is the cache's best friend."""


def _zipf_rank(rng: random.Random, n: int) -> int:
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(n)]
    total = sum(weights)
    x = rng.random() * total
    for rank, w in enumerate(weights):
        x -= w
        if x <= 0:
            return rank
    return n - 1


def _percentile(samples, q):
    """Exact nearest-rank percentile of the measured samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def test_serve_throughput(benchmark):
    def run():
        tmp = Path(tempfile.mkdtemp(prefix="bench_serve_"))
        server = JoinServer(
            tmp / "cache",
            tmp / "out",
            workers=SERVER_WORKERS,
            max_inflight=MAX_INFLIGHT,
            max_queue=MAX_QUEUE,
            telemetry_interval_s=TELEMETRY_INTERVAL_S,
        )
        host, port = server.start()

        rng = random.Random(MIX_SEED)
        schedule = []
        clock = 0.0
        for _ in range(N_QUERIES):
            clock += rng.expovariate(ARRIVAL_RATE_QPS)
            schedule.append((clock, _zipf_rank(rng, len(QUERY_MIX))))

        responses = [None] * N_QUERIES
        epoch = time.perf_counter()

        def fire(i: int, offset: float, mix_rank: int) -> None:
            delay = offset - (time.perf_counter() - epoch)
            if delay > 0:
                time.sleep(delay)
            spec_fields = dict(QUERY_MIX[mix_rank], workers=SERVER_WORKERS)
            started = time.perf_counter()
            try:
                with ServeClient(host, port) as client:
                    response = client.join(**spec_fields)
            except (OSError, ValueError) as exc:
                response = {"ok": False, "error": "transport", "message": str(exc)}
            response["_mix_rank"] = mix_rank
            response["_client_latency_s"] = time.perf_counter() - started
            responses[i] = response

        threads = [
            threading.Thread(target=fire, args=(i, offset, rank), daemon=True)
            for i, (offset, rank) in enumerate(schedule)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total_s = time.perf_counter() - epoch

        # Backpressure phase: a simultaneous burst at a *cold* spec.  The
        # leader executes (~hundreds of ms), followers coalesce behind it
        # holding admission slots, so arrivals past max_inflight +
        # max_queue must be rejected with queue_full — the open loop
        # above may or may not queue deep enough; this provably does.
        burst_n = MAX_INFLIGHT + MAX_QUEUE + 4
        burst_spec = {
            "dataset": "road_rail", "scale": 0.01, "seed": 17,
            "workers": SERVER_WORKERS,
        }
        burst_responses = [None] * burst_n

        def burst_fire(i: int) -> None:
            try:
                with ServeClient(host, port) as client:
                    burst_responses[i] = client.join(**burst_spec)
            except (OSError, ValueError) as exc:
                burst_responses[i] = {"ok": False, "error": "transport",
                                      "message": str(exc)}

        burst_threads = [
            threading.Thread(target=burst_fire, args=(i,), daemon=True)
            for i in range(burst_n)
        ]
        for t in burst_threads:
            t.start()
        for t in burst_threads:
            t.join()
        burst_rejected = [
            r for r in burst_responses if r and not r.get("ok")
        ]
        assert burst_rejected, (
            f"a burst of {burst_n} simultaneous queries against "
            f"{MAX_INFLIGHT}+{MAX_QUEUE} admission slots must reject some"
        )
        assert all(r["error"] == "queue_full" for r in burst_rejected)

        stats = server.stats()
        telemetry = server.telemetry()
        server.shutdown()

        series = telemetry["series"]

        def _series_peak(name):
            entry = series.get(name)
            return int(entry["max"]) if entry and entry["max"] is not None else 0

        telemetry_block = {
            "ticks": telemetry["sampling"]["ticks"],
            "interval_s": TELEMETRY_INTERVAL_S,
            "sampled_series": len(series),
            "slow_log_entries": len(telemetry["slow_log"]),
            "queue_depth_max": _series_peak("queue_depth"),
            "inflight_max": _series_peak("inflight"),
        }

        completed = [r for r in responses if r and r.get("ok")]
        rejected = [r for r in responses if r and not r.get("ok")]
        assert completed, "no query survived admission — mix/rate mismatch"
        assert len(completed) + len(rejected) == N_QUERIES
        assert stats["admitted"] + stats["rejected"] == N_QUERIES + burst_n
        # A healthy bench run never trips the breaker, sheds, or dedups.
        assert stats["breaker"]["state"] == "closed"
        assert stats["outcomes"]["degraded"] == 0
        assert stats["outcomes"]["deadline_exceeded"] == 0
        assert stats["duplicates_dropped"] == 0

        # Byte-identity: served answers must match one-shot parallel runs,
        # and every response for the same spec must agree with itself.
        digests = {}
        for r in completed:
            digests.setdefault(r["_mix_rank"], set()).add(r["result_sha256"])
        for rank, seen in sorted(digests.items()):
            assert len(seen) == 1, f"mix rank {rank} served {len(seen)} digests"
            spec = QuerySpec(workers=SERVER_WORKERS, **QUERY_MIX[rank])
            tuples_r, tuples_s = spec.generate()
            one_shot = parallel_join(
                tuples_r, tuples_s, spec.predicate_fn,
                backend="process", workers=SERVER_WORKERS,
            )
            assert result_digest(one_shot.pairs) == next(iter(seen)), (
                f"served result for mix rank {rank} != one-shot parallel run"
            )

        miss_lat = [
            r["_client_latency_s"] for r in completed
            if r["source"] in ("miss", "warm")
        ]
        hit_lat = [
            r["_client_latency_s"] for r in completed
            if r["source"] in ("hit", "coalesced")
        ]
        assert hit_lat, "zipf mix produced no cache hits"
        hit_rate = len(hit_lat) / len(completed)
        hit_p50 = _percentile(hit_lat, 0.50)
        miss_p50 = _percentile(miss_lat, 0.50)
        assert miss_p50 is not None
        assert hit_p50 < miss_p50, (
            f"cache replay (p50 {hit_p50:.4f}s) should beat execution "
            f"(p50 {miss_p50:.4f}s)"
        )

        all_lat = [r["_client_latency_s"] for r in completed]
        table = ResultTable(
            f"Serve throughput ({N_QUERIES} offered @ {ARRIVAL_RATE_QPS}/s, "
            f"{len(QUERY_MIX)} distinct, zipf s={ZIPF_S})",
            ["class", "n", "p50 s", "p95 s", "p99 s"],
        )
        for label, lat in (
            ("all", all_lat), ("miss", miss_lat), ("hit", hit_lat)
        ):
            table.add(
                label, len(lat),
                _percentile(lat, 0.50) or 0.0,
                _percentile(lat, 0.95) or 0.0,
                _percentile(lat, 0.99) or 0.0,
            )
        table.emit("serve_throughput.txt")

        hot = QUERY_MIX[0]

        def record(algorithm, lat, result_count):
            return {
                "algorithm": algorithm,
                "scale": hot["scale"],
                "buffer_mb": 0.0,
                "total_s": total_s,
                "cpu_s": total_s,
                "io_s": 0.0,
                "candidates": 0,
                "result_count": result_count,
                "phases": [],
                "counters": {"page_reads": 0, "page_writes": 0, "seeks": 0},
                "notes": {
                    "measured": [
                        "total_s", "cpu_s", "latency_p50_s",
                        "latency_p95_s", "latency_p99_s", "throughput_qps",
                    ],
                    "offered": N_QUERIES,
                    "completed": len(completed),
                    "rejected": len(rejected),
                    "reject_reasons": sorted(
                        {r.get("error", "?") for r in rejected}
                    ),
                    "burst_offered": burst_n,
                    "burst_rejected": len(burst_rejected),
                    "class_n": len(lat),
                    "cache_hit_rate": round(hit_rate, 4),
                    "latency_p50_s": round(_percentile(lat, 0.50) or 0.0, 6),
                    "latency_p95_s": round(_percentile(lat, 0.95) or 0.0, 6),
                    "latency_p99_s": round(_percentile(lat, 0.99) or 0.0, 6),
                    "throughput_qps": round(len(completed) / total_s, 4),
                    "distinct_queries": len(QUERY_MIX),
                    "zipf_s": ZIPF_S,
                    "arrival_rate_qps": ARRIVAL_RATE_QPS,
                    "mix_seed": MIX_SEED,
                    "server_workers": SERVER_WORKERS,
                    "max_inflight": MAX_INFLIGHT,
                    "max_queue": MAX_QUEUE,
                    # The canonical resilience summary — one formatter
                    # shared with the server's stats and telemetry ops.
                    **outcome_block(stats),
                },
                "telemetry": telemetry_block,
            }

        hot_count = next(
            (r["result_count"] for r in completed if r["_mix_rank"] == 0), 0
        )
        records = [
            record("PBSM-serve", all_lat, hot_count),
            record("PBSM-serve-miss", miss_lat, hot_count),
            record("PBSM-serve-hit", hit_lat, hot_count),
        ]
        write_bench_file("serve_throughput", records, RESULTS_DIR)
        return stats, hit_rate, hit_p50, miss_p50

    stats, hit_rate, hit_p50, miss_p50 = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert hit_rate > 0
    assert hit_p50 < miss_p50
