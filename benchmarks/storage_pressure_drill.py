"""Storage-pressure drill: disk budgets, ENOSPC injection, typed rejects.

Four phases against the real process backend and a real ``python -m
repro serve`` subprocess:

**Phase 1 — meter the unconstrained footprint.**  One run with an
unbounded :class:`~repro.storage.pressure.DiskBudget` records the
workload's peak on-disk footprint (the high watermark) and the baseline
result digest every later phase is compared against.

**Phase 2 — shrink the budget.**  The same workload runs at 1.0x, 0.5x
and 0.25x of that peak.  Every run must finish with a byte-identical
``result_digest`` and ``merge.duplicates_dropped == 0``: under pressure
the engine reclaims, retries once, then degrades the starved pair to
the serial in-memory path — it never drops or double-counts a pair.
The sub-peak budgets must actually deny charges and journal
``disk_pressure`` episodes, or the drill proved nothing.

**Phase 3 — deterministic ENOSPC replay.**  The committed
``benchmarks/faultplans/disk_full.json`` must byte-match what
``FaultPlan.compile`` derives from its (spec, seed, domain) triple, and
plans compiled for three seeds must each inject the same (category,
byte-ordinal) denials — in the same order, with identical digests —
when replayed twice.

**Phase 4 — serve-tier admission.**  A server with a tiny
``--disk-budget`` must answer an over-footprint query with the *typed*
``storage_overload`` reject (carrying ``estimated_bytes`` /
``available_bytes``), never a crash or a partial answer; a generously
budgeted server must serve the same query to the baseline digest.

Run locally with ``PYTHONPATH=src python benchmarks/storage_pressure_drill.py``;
CI runs it in the ``storage-pressure`` job and uploads the out directory.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

from repro.faults import FaultPlan, load_plan
from repro.faults.plan import NAMED_SPECS
from repro.obs import RunJournal
from repro.parallel import parallel_join
from repro.serve import (
    QuerySpec,
    ServeClient,
    read_port_file,
    result_digest,
    wait_for_server,
)
from repro.storage import DiskBudget

WORKERS = 2
FIELDS = {"dataset": "road_hydro", "scale": 0.004, "workers": WORKERS}
PLAN_PATH = Path(__file__).parent / "faultplans" / "disk_full.json"
PLAN_SEEDS = (0, 1, 2)
FAULT_PAIRS = 8  # matches the specs' default partitions (workers * 4)


def run_once(budget=None, fault_plan=None, journal_path=None, out=None):
    spec = QuerySpec(**FIELDS)
    tuples_r, tuples_s = spec.generate()
    journal = RunJournal(journal_path) if journal_path is not None else None
    kwargs = {}
    if out is not None:
        kwargs["checkpoint_dir"] = str(out)
    result = parallel_join(
        tuples_r, tuples_s, spec.predicate_fn,
        backend="process", workers=spec.workers,
        disk_budget=budget, fault_plan=fault_plan, journal=journal,
        **kwargs,
    )
    return result_digest(result.pairs), result


def journal_records(path, *types):
    records = [json.loads(line) for line in Path(path).read_text().splitlines()]
    if types:
        records = [r for r in records if r["type"] in types]
    return records


def phase_1_meter(out: Path):
    print("== phase 1: meter the unconstrained footprint ==")
    out.mkdir(parents=True, exist_ok=True)
    budget = DiskBudget()  # unbounded: meters, never denies
    digest, result = run_once(budget=budget)
    snap = budget.snapshot()
    peak = snap["high_watermark_bytes"]
    assert peak > 0, snap
    assert snap["denials"] == 0, snap
    assert result.duplicates_dropped == 0, result.duplicates_dropped
    print(f"  peak footprint {peak} bytes {snap['peak_by_category']}; "
          f"baseline digest {digest[:12]}")
    return peak, digest


def phase_2_budgets(out: Path, peak: int, baseline: str) -> None:
    print("== phase 2: byte-identical results under shrinking budgets ==")
    out.mkdir(parents=True, exist_ok=True)
    for fraction in (1.0, 0.5, 0.25):
        cap = int(peak * fraction)
        budget = DiskBudget(cap)
        journal_path = out / f"journal-{fraction:g}.jsonl"
        digest, result = run_once(budget=budget, journal_path=journal_path)
        snap = budget.snapshot()
        assert digest == baseline, (
            f"digest diverged at {fraction:g}x: {digest} != {baseline}"
        )
        assert result.duplicates_dropped == 0, result.duplicates_dropped
        pressure = journal_records(journal_path, "disk_pressure")
        if fraction < 1.0:
            # A sub-peak budget that never denied proved nothing.
            assert snap["denials"] > 0, (fraction, snap)
            assert pressure, f"no disk_pressure events at {fraction:g}x"
        print(f"  {fraction:g}x ({cap} bytes): digest identical, "
              f"{snap['denials']} denial(s), "
              f"{len(pressure)} pressure episode(s), 0 duplicates")


def phase_3_replay(out: Path) -> None:
    print("== phase 3: deterministic ENOSPC injection replay ==")
    out.mkdir(parents=True, exist_ok=True)

    # The committed plan is exactly what its (spec, seed, domain) triple
    # compiles to — nobody hand-edited the JSON into an unreproducible
    # artifact.
    committed = json.loads(PLAN_PATH.read_text())
    recompiled = FaultPlan.compile(
        NAMED_SPECS["disk_full"],
        seed=committed["seed"], num_pairs=committed["num_pairs"],
    )
    assert recompiled.to_dict() == committed, (
        "committed plan drifted from its compiled form"
    )
    plan = load_plan(str(PLAN_PATH))
    assert plan.disk_full_points, "committed plan lost its injection points"
    print(f"  committed plan verified: points {plan.disk_full_points}")

    for seed in PLAN_SEEDS:
        seeded = FaultPlan.compile(
            NAMED_SPECS["disk_full"], seed=seed, num_pairs=FAULT_PAIRS
        )
        replays = []
        for attempt in (1, 2):
            journal_path = out / f"journal-seed{seed}-run{attempt}.jsonl"
            run_dir = out / f"ckpt-seed{seed}-run{attempt}"
            digest, result = run_once(
                fault_plan=seeded, journal_path=journal_path, out=run_dir,
            )
            assert result.duplicates_dropped == 0, result.duplicates_dropped
            injected = [
                (r["category"], r["ordinal"], r.get("kind"))
                for r in journal_records(journal_path, "fault_injected")
                if r.get("kind") == "disk_full"
            ]
            recovered = [
                (r["category"], r.get("action"))
                for r in journal_records(journal_path, "disk_full_recovered")
            ]
            replays.append((digest, injected, recovered))
        (digest_a, injected_a, recovered_a), (digest_b, injected_b,
                                              recovered_b) = replays
        assert digest_a == digest_b, f"seed {seed}: digests diverged"
        assert injected_a == injected_b, (
            f"seed {seed}: injection sequence diverged:\n"
            f"  {injected_a}\n  {injected_b}"
        )
        assert recovered_a == recovered_b, (
            f"seed {seed}: recovery sequence diverged"
        )
        assert injected_a, f"seed {seed}: plan injected nothing"
        print(f"  seed {seed}: {len(injected_a)} injection(s) "
              f"{[(c, o) for c, o, _ in injected_a]} replayed identically, "
              f"recoveries {recovered_a}")


def start_server(out, *extra):
    out.mkdir(parents=True, exist_ok=True)
    port_file = out / "port.txt"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--cache-dir", str(out / "cache"),
            "--out", str(out),
            "--port-file", str(port_file),
            "--workers", str(WORKERS),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    port = read_port_file(port_file, timeout_s=60.0)
    wait_for_server("127.0.0.1", port, timeout_s=60.0)
    return proc, port


def drain(proc):
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=120.0)
    assert proc.returncode == 0, f"server exited {proc.returncode}:\n{output}"
    assert "drained" in output, f"clean-shutdown summary missing:\n{output}"
    return output


def phase_4_serve(out: Path, peak: int, baseline: str) -> None:
    print("== phase 4: serve-tier spill-aware admission ==")

    # A budget far under the workload's footprint: admission must reject
    # with the typed error before a single spill byte hits disk.
    tiny = out / "tiny"
    proc, port = start_server(tiny, "--disk-budget", str(max(peak // 50, 1)))
    try:
        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            response = client.join(**FIELDS)
            assert not response.get("ok"), response
            assert response["error"] == "storage_overload", response
            assert response["estimated_bytes"] > response["available_bytes"], (
                response
            )
            print(f"  tiny budget: typed storage_overload reject "
                  f"(estimated {response['estimated_bytes']} > "
                  f"available {response['available_bytes']})")
            stats = client.stats()["stats"]
            assert stats["outcomes"]["storage_overload"] == 1, stats["outcomes"]
            assert stats["disk"]["used_bytes"] == 0, stats["disk"]
    finally:
        if proc.poll() is None:
            output = drain(proc)
        else:
            output, _ = proc.communicate()
            raise AssertionError(f"server died early:\n{output}")
    assert "storage-overload" in output, output
    pressure = journal_records(tiny / "serve.jsonl", "disk_pressure")
    assert pressure and pressure[0]["estimated_bytes"] > 0, pressure
    print("  admission reject journaled as disk_pressure")

    # A generous budget admits and serves the identical bytes.
    roomy = out / "roomy"
    proc, port = start_server(roomy, "--disk-budget", str(peak * 8))
    try:
        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            response = client.join(**FIELDS)
            assert response.get("ok"), response
            assert response["source"] == "miss", response
            assert response["result_sha256"] == baseline, (
                "served digest diverged from baseline"
            )
            stats = client.stats()["stats"]
            assert stats["duplicates_dropped"] == 0, stats
            assert stats["disk"]["used_bytes"] > 0, stats["disk"]
            print(f"  roomy budget: served digest-identical "
                  f"({stats['disk']['used_bytes']} bytes charged)")
    finally:
        if proc.poll() is None:
            drain(proc)
        else:
            output, _ = proc.communicate()
            raise AssertionError(f"server died early:\n{output}")


def main(out_dir: str = "storage-pressure-out") -> int:
    root = Path(out_dir)
    peak, baseline = phase_1_meter(root / "phase-1")
    phase_2_budgets(root / "phase-2", peak, baseline)
    phase_3_replay(root / "phase-3")
    phase_4_serve(root / "phase-4", peak, baseline)
    print("storage pressure ok: budgets at 1.0x/0.5x/0.25x byte-identical, "
          "ENOSPC plans replay deterministically, serve rejects are typed — "
          "0 duplicates dropped throughout")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
