"""Tables 2 & 3 — dataset statistics.

Paper (full scale):
    Table 2 (TIGER):   Road 456,613 / 62.4 MB / 24.0 MB R*-tree
                       Hydro 122,149 / 25.2 MB / 6.5 MB
                       Rail 16,844 / 2.4 MB / 1.0 MB
    Table 3 (Sequoia): Polygon 58,115 (avg 46 pts), Island (avg 35 pts)

We reproduce the *ratios* (cardinality, bytes/tuple, tree-to-data size) at
``BENCH_SCALE``.
"""

from repro.bench import BENCH_SCALE, ResultTable, fresh_sequoia, fresh_tiger
from repro.index import bulk_load_rstar


def test_table2_tiger_statistics(benchmark):
    def build():
        db, rels = fresh_tiger(8.0)
        table = ResultTable(
            f"Table 2: Wisconsin TIGER data (scale={BENCH_SCALE})",
            ["Data", "# objects", "total MB", "R*-tree MB", "avg points"],
        )
        stats = {}
        for name in ("road", "hydro", "rail"):
            rel = rels[name]
            tree = bulk_load_rstar(db.pool, rel)
            table.add(
                name,
                len(rel),
                rel.size_bytes() / 1e6,
                tree.size_bytes() / 1e6,
                rel.catalog.avg_points,
            )
            stats[name] = (len(rel), rel.size_bytes(), tree.size_bytes())
        table.emit("table2_tiger.txt")
        return stats

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    road, hydro, rail = stats["road"], stats["hydro"], stats["rail"]
    # Paper cardinality ratios: road:hydro ~3.7, road:rail ~27.
    assert 3.0 < road[0] / hydro[0] < 4.5
    assert 20 < road[0] / rail[0] < 35
    # Paper tree-to-data ratios: road tree 38% of data, hydro 26%.
    assert 0.1 < road[2] / road[1] < 0.7


def test_table3_sequoia_statistics(benchmark):
    def build():
        db, rels = fresh_sequoia(8.0)
        table = ResultTable(
            f"Table 3: Sequoia data (scale={BENCH_SCALE})",
            ["Data", "# objects", "total MB", "R*-tree MB", "avg points"],
        )
        stats = {}
        for name in ("polygon", "island"):
            rel = rels[name]
            tree = bulk_load_rstar(db.pool, rel)
            table.add(
                name,
                len(rel),
                rel.size_bytes() / 1e6,
                tree.size_bytes() / 1e6,
                rel.catalog.avg_points,
            )
            stats[name] = (len(rel), rel.catalog.avg_points)
        table.emit("table3_sequoia.txt")
        return stats

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    # Paper: polygons average 46 points, islands 35.
    assert abs(stats["polygon"][1] - 46) < 8
    assert abs(stats["island"][1] - 35) < 8
