"""Figure 7 — Road ⋈ Hydrography, no pre-existing indices, buffer sweep.

Paper shape: PBSM is fastest at every buffer size (48-98% faster than the
R-tree join, 93-300% faster than INL); INL improves sharply as the buffer
grows because the hydro data starts fitting in memory.
"""

from benchmarks.common import (
    assert_same_results,
    emit_sweep_table,
    run_three_algorithms,
    tiger_workload,
)
from repro.bench import BENCH_SCALE


def test_fig7_road_hydro_sweep(benchmark):
    def run():
        results = run_three_algorithms(tiger_workload("road", "hydro"))
        emit_sweep_table(
            f"Figure 7: Road x Hydrography join time, no indices "
            f"(scale={BENCH_SCALE})",
            "fig7_road_hydro.txt",
            results,
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_same_results(results)

    smallest, largest = min(results), max(results)
    for paper_mb, per_algo in results.items():
        pbsm = per_algo["PBSM"].report.total_s
        rtree = per_algo["R-tree"].report.total_s
        inl = per_algo["INL"].report.total_s
        # Headline: PBSM wins at every buffer size.
        assert pbsm < rtree, f"PBSM {pbsm:.1f} !< R-tree {rtree:.1f} @ {paper_mb}MB"
        assert pbsm < inl, f"PBSM {pbsm:.1f} !< INL {inl:.1f} @ {paper_mb}MB"

    # INL improves much more than PBSM as the buffer grows (paper: INL's
    # random fetches become buffer hits).
    inl_gain = (
        results[smallest]["INL"].report.total_s
        / results[largest]["INL"].report.total_s
    )
    pbsm_gain = (
        results[smallest]["PBSM"].report.total_s
        / results[largest]["PBSM"].report.total_s
    )
    assert inl_gain > pbsm_gain
