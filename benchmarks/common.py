"""Shared helpers for the join benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro import (
    IndexedNestedLoopsJoin,
    PBSMJoin,
    RTreeJoin,
    intersects,
)
from repro.bench import (
    PAPER_BUFFER_MB,
    ResultTable,
    fresh_tiger,
    write_bench_json,
)
from repro.core.stats import JoinResult
from repro.storage import Database, Relation

ALGORITHMS = ("PBSM", "R-tree", "INL")


def run_three_algorithms(
    make_db: Callable[[float], Tuple[Database, Relation, Relation]],
    predicate=intersects,
    clustered: bool = False,
) -> Dict[float, Dict[str, JoinResult]]:
    """Run PBSM / R-tree join / INL cold at each paper buffer size.

    ``make_db(paper_buffer_mb)`` must return a fresh cold database plus the
    two join inputs.  Each algorithm gets its own fresh database so index
    builds and temp files never help a competitor.
    """
    results: Dict[float, Dict[str, JoinResult]] = {}
    for paper_mb in PAPER_BUFFER_MB:
        per_algo: Dict[str, JoinResult] = {}
        for algo_name in ALGORITHMS:
            db, rel_r, rel_s = make_db(paper_mb)
            if algo_name == "PBSM":
                res = PBSMJoin(db.pool).run(rel_r, rel_s, predicate)
            elif algo_name == "R-tree":
                res = RTreeJoin(db.pool).run(
                    rel_r, rel_s, predicate,
                    r_clustered=clustered, s_clustered=clustered,
                )
            else:
                res = IndexedNestedLoopsJoin(db.pool).run(
                    rel_r, rel_s, predicate,
                    r_clustered=clustered, s_clustered=clustered,
                )
            per_algo[algo_name] = res
        results[paper_mb] = per_algo
    return results


def emit_sweep_table(
    title: str,
    filename: str,
    results: Dict[float, Dict[str, JoinResult]],
) -> None:
    """Write the human-readable ``.txt`` table and, alongside it, the
    schema-validated ``BENCH_<name>.json`` perf-trajectory record."""
    table = ResultTable(
        title, ["buffer (paper MB)", *(f"{a} (s)" for a in ALGORITHMS)]
    )
    for paper_mb, per_algo in sorted(results.items()):
        table.add(
            paper_mb, *(per_algo[a].report.total_s for a in ALGORITHMS)
        )
    table.emit(filename)
    write_bench_json(filename.rsplit(".", 1)[0], results)


def tiger_workload(r_name: str, s_name: str, clustered: bool = False):
    """A ``make_db`` for a TIGER query pair."""

    def make_db(paper_mb: float):
        db, rels = fresh_tiger(
            paper_mb, clustered=clustered, include=(r_name, s_name)
        )
        return db, rels[r_name], rels[s_name]

    return make_db


def assert_same_results(results: Dict[float, Dict[str, JoinResult]]) -> None:
    """All algorithms at all buffer sizes must produce the *same pairs*.

    Comparing sorted OID pair sets, not counts: every algorithm loads the
    same tuples in the same order into its own fresh database, so OIDs are
    comparable across runs, and a count tie can mask wrong results.
    """
    reference = None
    reference_from = None
    for paper_mb, per_algo in results.items():
        for name, res in per_algo.items():
            pairs = sorted(set(res.pairs))
            if reference is None:
                reference = pairs
                reference_from = f"{name} @ {paper_mb}MB"
                continue
            if pairs != reference:
                missing = len(set(reference) - set(pairs))
                extra = len(set(pairs) - set(reference))
                raise AssertionError(
                    f"{name} @ {paper_mb}MB disagrees with {reference_from}: "
                    f"{len(pairs)} pairs vs {len(reference)} "
                    f"({missing} missing, {extra} unexpected)"
                )
