"""§1 claim — bulk loading an R*-tree vastly outperforms repeated inserts.

Paper: "using a buffer pool size of 16MB, Paradise takes 109.9 seconds to
bulk load 122K objects into an 6.5MB R*-tree index, and 864.5 seconds to
build the same index using multiple inserts" — a ~7.9x ratio.  This is why
the paper's INL and R-tree baselines always bulk load.
"""


from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger
from repro.core.stats import JoinReport, PhaseMeter
from repro.index import RStarTree, bulk_load_rstar


def test_bulkload_vs_multiple_inserts(benchmark):
    def run():
        # Paper used the Hydrography data with a 16 MB pool.
        db, rels = fresh_tiger(16.0, include=("hydro",))
        hydro = rels["hydro"]
        report = JoinReport("index build")
        meter = PhaseMeter(db.pool.disk, report)

        with meter.phase("Bulk load") as bulk_phase:
            bulk_tree = bulk_load_rstar(db.pool, hydro)

        db.pool.clear()
        with meter.phase("Multiple inserts") as insert_phase:
            insert_tree = RStarTree(db.pool)
            for oid, t in hydro.scan():
                insert_tree.insert(t.mbr, oid)

        # Both trees index the same entries.
        window = hydro.universe
        assert sorted(bulk_tree.search(window)) == sorted(insert_tree.search(window))
        bulk_tree.check_invariants()
        insert_tree.check_invariants()

        table = ResultTable(
            f"Bulk load vs multiple inserts, Hydrography (scale={BENCH_SCALE})",
            ["method", "sim seconds", "pages", "entries"],
        )
        table.add("bulk load", bulk_phase.total_s, bulk_tree.num_pages, len(bulk_tree))
        table.add(
            "multiple inserts",
            insert_phase.total_s,
            insert_tree.num_pages,
            len(insert_tree),
        )
        table.add("ratio", insert_phase.total_s / bulk_phase.total_s, "-", "-")
        table.emit("bulkload_vs_inserts.txt")
        return bulk_phase.total_s, insert_phase.total_s

    bulk_s, insert_s = benchmark.pedantic(run, rounds=1, iterations=1)
    # Paper ratio is ~7.9x; require a clear multiple-of-bulk-load win.
    assert insert_s > 3.0 * bulk_s, f"inserts {insert_s:.1f}s vs bulk {bulk_s:.1f}s"
