"""Z-order join (Orenstein) — the §2 grid-granularity trade-off, plus a
head-to-head with PBSM.

The paper dismisses transform-based approaches because "in the new domain
some spatial proximity information is lost, making the algorithms complex
and less efficient", and cites [Ore89]: a fine grid filters better but
costs more z-values per object.  This benchmark measures that curve and
compares the best z-order configuration against PBSM on the same workload.
"""

from repro import PBSMJoin, intersects
from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger
from repro.joins import ZOrderConfig, ZOrderJoin

BUFFER = 8.0
LEVELS = (4, 6, 8, 10)


def test_zorder_granularity_tradeoff(benchmark):
    def run():
        runs = {}
        for level in LEVELS:
            db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
            cfg = ZOrderConfig(max_level=level)
            runs[level] = ZOrderJoin(db.pool, cfg).run(
                rels["road"], rels["hydro"], intersects
            )
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        pbsm = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)

        table = ResultTable(
            f"Z-order join granularity sweep vs PBSM (scale={BENCH_SCALE})",
            ["config", "total s", "z-elements R", "distinct candidates"],
        )
        for level in LEVELS:
            rep = runs[level].report
            table.add(
                f"z-order level {level}",
                rep.total_s,
                rep.notes["z_elements_r"],
                rep.notes["distinct_candidates"],
            )
        table.add("PBSM (1024 tiles)", pbsm.report.total_s, "-", pbsm.report.candidates)
        table.emit("zorder_tradeoff.txt")
        return runs, pbsm

    runs, pbsm = benchmark.pedantic(run, rounds=1, iterations=1)

    counts = {len(res.pairs) for res in runs.values()} | {len(pbsm.pairs)}
    assert len(counts) == 1  # every configuration returns the exact result

    # [Ore89]: finer grid -> more elements overall, fewer distinct
    # candidates.  Element counts need not be strictly monotone between
    # adjacent levels (adjacent-interval coalescing can shrink a level),
    # so only the endpoints are compared.
    elems = [runs[lv].report.notes["z_elements_r"] for lv in LEVELS]
    cands = [runs[lv].report.notes["distinct_candidates"] for lv in LEVELS]
    assert elems[-1] > elems[0]
    assert cands == sorted(cands, reverse=True)

    # §2's verdict: the transform-based join is less efficient than PBSM
    # (it loses proximity information and pays for element replication).
    best_z = min(res.report.total_s for res in runs.values())
    assert pbsm.report.total_s < best_z * 1.5
