"""Process-backend speedup: real worker processes vs the serial reference.

Runs the fig-7 smoke workload (road x hydro, ``BENCH_SCALE / 2``) on the
serial backend and on the true multiprocess backend at 1, 2, and 4 workers,
and emits ``BENCH_parallel_speedup.json`` with three speedup views per
configuration:

* ``wall_speedup``       — measured wall-clock vs serial.  Honest but
  hardware-bound: on a box with fewer cores than workers the pool
  time-slices and this can drop below 1.0, so it is only *asserted* on
  machines with real parallel headroom (``WALL_ASSERT_MIN_CPUS``).
* ``work_speedup``       — measured per-worker work distribution
  (total task seconds / busiest worker's seconds): how evenly the LPT
  order plus the shared-queue stealing spread the work.
* ``lpt_speedup``        — fully deterministic: the LPT schedule replayed
  over the per-task key-pointer cost seeds (sum of costs / simulated
  makespan).  Identical on every machine for a given seed and scale; this
  is the number the >= 2x gate always enforces.

Every configuration must produce the byte-identical sorted pair set.
"""

import heapq
import os

from repro import intersects
from repro.bench import BENCH_SCALE, ResultTable
from repro.bench.harness import RESULTS_DIR, _cached_tuples
from repro.obs.bench import write_bench_file
from repro.parallel import parallel_join

WORKER_SWEEP = (1, 2, 4)

WALL_ASSERT_MIN_CPUS = 8
"""Only assert the wall-clock speedup where the hardware can deliver it:
4 workers + a coordinator need real parallel headroom, not time-slicing."""


def lpt_makespan(costs, workers):
    """Deterministic LPT schedule: assign longest-first to least loaded."""
    loads = [0] * workers
    heapq.heapify(loads)
    for cost in sorted(costs, reverse=True):
        heapq.heappush(loads, heapq.heappop(loads) + cost)
    return max(loads)


def _record(algorithm, scale, *, result_count, wall_s, notes):
    """One schema-conforming record; wall time is the only cost here —
    the process backend has no simulated disk, so the modelled-I/O fields
    are structurally zero rather than unknown."""
    return {
        "algorithm": algorithm,
        "scale": scale,
        "buffer_mb": 0.0,
        "total_s": wall_s,
        "cpu_s": wall_s,
        "io_s": 0.0,
        "candidates": notes.get("candidates", 0),
        "result_count": result_count,
        "phases": [],
        "counters": {"page_reads": 0, "page_writes": 0, "seeks": 0},
        "notes": notes,
    }


def test_process_backend_speedup(benchmark):
    scale = BENCH_SCALE / 2

    def run():
        tuples_r = list(_cached_tuples("road", scale, False))
        tuples_s = list(_cached_tuples("hydro", scale, False))

        serial = parallel_join(tuples_r, tuples_s, intersects, backend="serial")
        expected = serial.pairs
        assert expected, "smoke workload must produce result pairs"

        table = ResultTable(
            f"Process-backend speedup (scale={scale}, "
            f"cpus={os.cpu_count()}), serial wall={serial.wall_s:.3f}s",
            ["workers", "wall s", "wall speedup", "work speedup",
             "LPT speedup", "tasks"],
        )
        records = [
            _record(
                "PBSM-serial", scale,
                result_count=len(serial),
                wall_s=serial.wall_s,
                notes={"backend": "serial", "workers": 1,
                       "cpu_count": os.cpu_count()},
            )
        ]
        runs = {}
        for workers in WORKER_SWEEP:
            result = parallel_join(
                tuples_r, tuples_s, intersects,
                backend="process", workers=workers,
            )
            assert result.pairs == expected, f"pair set drifted at w={workers}"
            assert result.duplicates_dropped == 0, (
                f"two-layer merge dropped {result.duplicates_dropped} "
                f"duplicate(s) at w={workers}; per-task outputs must be "
                f"disjoint"
            )
            costs = [t.cost_estimate for t in result.tasks]
            lpt = sum(costs) / lpt_makespan(costs, workers)
            wall_speedup = serial.wall_s / result.wall_s
            runs[workers] = (result, lpt, wall_speedup)
            table.add(
                workers, result.wall_s, wall_speedup, result.speedup,
                lpt, len(result.tasks),
            )
            records.append(
                _record(
                    f"PBSM-process-w{workers}", scale,
                    result_count=len(result),
                    wall_s=result.wall_s,
                    notes={
                        "backend": "process",
                        "workers": workers,
                        "tasks": len(result.tasks),
                        "candidates": sum(t.candidates for t in result.tasks),
                        "wall_speedup_vs_serial": round(wall_speedup, 4),
                        "work_speedup": round(result.speedup, 4),
                        "lpt_speedup": round(lpt, 4),
                        "cpu_count": os.cpu_count(),
                        # Two-layer partitioning: the coordinator merge is
                        # a k-way interleave of disjoint streams, not a
                        # sorted-set dedup — and must drop nothing.
                        "coordinator_merge_s": round(
                            result.coordinator_merge_s, 6
                        ),
                        "merge_duplicates_dropped": result.duplicates_dropped,
                    },
                )
            )
        table.emit("parallel_speedup.txt")
        write_bench_file("parallel_speedup", records, RESULTS_DIR)
        return runs

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    result4, lpt4, wall4 = runs[4]

    # The deterministic gate: with 4 workers the partitioning must expose
    # at least a 2x-parallel schedule.  Same number on every machine.
    assert lpt4 >= 2.0, f"LPT schedule speedup {lpt4:.2f} < 2.0"

    # The measured work actually spread across >= 2 workers' worth of
    # concurrency (busiest worker did at most half the total work).
    assert result4.speedup >= 2.0, (
        f"work-distribution speedup {result4.speedup:.2f} < 2.0"
    )

    # Wall clock is hardware truth, asserted only with real headroom.
    cpus = os.cpu_count() or 1
    if cpus >= WALL_ASSERT_MIN_CPUS:
        assert wall4 >= 2.0, (
            f"wall-clock speedup {wall4:.2f} < 2.0 on {cpus} cpus"
        )
