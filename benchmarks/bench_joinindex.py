"""Spatial join index [Rot91] vs PBSM — Table 1's precompute-based class.

Günther's analysis (cited in §2) concludes join indices win at *low* join
selectivities because the join is answered from precomputed pairs; the
price is the build.  This benchmark shows the trade on the Road x Hydro
workload: an expensive one-time build, then repeated queries that skip the
filter step entirely.
"""

from repro import PBSMJoin, intersects
from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger
from repro.joins import SpatialJoinIndex

BUFFER = 8.0


def test_joinindex_vs_pbsm(benchmark):
    def run():
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        pbsm = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)

        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        ji = SpatialJoinIndex.build(db.pool, rels["road"], rels["hydro"])
        db.pool.clear()
        first = ji.query(intersects)
        db.pool.clear()
        second = ji.query(intersects)

        assert first.pairs == pbsm.pairs
        assert second.pairs == pbsm.pairs

        saved_per_query = pbsm.report.total_s - second.report.total_s
        break_even = (
            ji.build_report.total_s / saved_per_query
            if saved_per_query > 0
            else float("inf")
        )
        table = ResultTable(
            f"Rot91 spatial join index vs PBSM (scale={BENCH_SCALE})",
            ["operation", "sim seconds", "candidates"],
        )
        table.add("PBSM (full join)", pbsm.report.total_s, pbsm.report.candidates)
        table.add("join index build", ji.build_report.total_s, len(ji))
        table.add("join index query #1", first.report.total_s, first.report.candidates)
        table.add("join index query #2", second.report.total_s, second.report.candidates)
        table.add("queries to amortise build", break_even, "-")
        table.emit("joinindex_vs_pbsm.txt")
        return pbsm, ji, first, second, break_even

    pbsm, ji, first, second, break_even = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # The Günther trade-off: queries from the index are cheaper than a full
    # PBSM join (no filter step at query time)...
    assert first.report.total_s < pbsm.report.total_s
    assert second.report.total_s < pbsm.report.total_s
    # ...but the build — grid files grown tuple-at-a-time, like every
    # non-bulk index build in the paper's world — is far more expensive
    # than a single PBSM join, so the index only pays off for a join that
    # will be asked many times.  Sanity-bound the break-even point.
    assert ji.build_report.total_s > pbsm.report.total_s
    assert break_even < 200
