"""Figures 10-12 — cost breakdowns, clustered vs non-clustered (8 MB pool).

Paper shape (Road ⋈ Hydrography):

* Fig 10 (R-tree join): index building dominates; clustering cuts it by
  skipping the key-pointer sort; the tree-join phase itself is unaffected
  by clustering (the bulk-loaded trees are identical either way).
* Fig 11 (INL): build cost shrinks with clustering; probe cost shrinks for
  small pools because probes in spatial order hit the buffer.
* Fig 12 (PBSM): the improvement comes mostly from cheaper partition
  writes; PBSM and the R-tree join pay the *same* refinement cost, which is
  ~45% of PBSM's total and ~23% of the R-tree join's.
"""

import pytest

from repro import (
    IndexedNestedLoopsJoin,
    PBSMJoin,
    RTreeJoin,
    intersects,
)
from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger

BUFFER = 8.0


@pytest.fixture(scope="module")
def breakdowns():
    out = {}
    for clustered in (False, True):
        db, rels = fresh_tiger(BUFFER, clustered=clustered, include=("road", "hydro"))
        out[("rtree", clustered)] = RTreeJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects,
            r_clustered=clustered, s_clustered=clustered,
        ).report
        db, rels = fresh_tiger(BUFFER, clustered=clustered, include=("road", "hydro"))
        out[("inl", clustered)] = IndexedNestedLoopsJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects,
            r_clustered=clustered, s_clustered=clustered,
        ).report
        db, rels = fresh_tiger(BUFFER, clustered=clustered, include=("road", "hydro"))
        out[("pbsm", clustered)] = PBSMJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects
        ).report
    return out


def _emit(report_nc, report_c, title, filename):
    table = ResultTable(title, ["phase", "non-clustered (s)", "clustered (s)"])
    for phase_nc in report_nc.phases:
        phase_c = report_c.phase(phase_nc.name)
        table.add(phase_nc.name, phase_nc.total_s, phase_c.total_s)
    table.add("TOTAL", report_nc.total_s, report_c.total_s)
    table.emit(filename)


def test_fig10_rtree_breakdown(benchmark, breakdowns):
    def run():
        nc, c = breakdowns[("rtree", False)], breakdowns[("rtree", True)]
        _emit(
            nc, c,
            f"Figure 10: R-tree join breakdown, Road x Hydro (scale={BENCH_SCALE})",
            "fig10_rtree_breakdown.txt",
        )
        return nc, c

    nc, c = benchmark.pedantic(run, rounds=1, iterations=1)
    # Clustering cannot make the build more expensive (it skips the sort).
    assert (
        c.phase("Build road Index").total_s
        <= nc.phase("Build road Index").total_s
    )
    # Tree-join I/O is essentially identical either way (the bulk-loaded
    # trees match up to run-merge tie order in the external sort).
    assert c.phase("Join Indices").total_ios == pytest.approx(
        nc.phase("Join Indices").total_ios, rel=0.25
    )
    # Clustered total is no worse.
    assert c.total_s <= nc.total_s * 1.05


def test_fig11_inl_breakdown(benchmark, breakdowns):
    def run():
        nc, c = breakdowns[("inl", False)], breakdowns[("inl", True)]
        _emit(
            nc, c,
            f"Figure 11: INL breakdown, Road x Hydro (scale={BENCH_SCALE})",
            "fig11_inl_breakdown.txt",
        )
        return nc, c

    nc, c = benchmark.pedantic(run, rounds=1, iterations=1)
    # Probe cost improves when the data (and probes) are in spatial order.
    assert c.phase("Probe Index").total_s < nc.phase("Probe Index").total_s
    assert c.total_s < nc.total_s


def test_fig12_pbsm_breakdown(benchmark, breakdowns):
    def run():
        nc, c = breakdowns[("pbsm", False)], breakdowns[("pbsm", True)]
        _emit(
            nc, c,
            f"Figure 12: PBSM breakdown, Road x Hydro (scale={BENCH_SCALE})",
            "fig12_pbsm_breakdown.txt",
        )
        return nc, c

    nc, c = benchmark.pedantic(run, rounds=1, iterations=1)
    # Partitioning benefits from clustered inputs (sequential partition
    # writes; paper §4.4 "the improvement ... arises mostly from a
    # reduction in the partitioning costs").
    part_nc = nc.phase("Partition road").io_s + nc.phase("Partition hydro").io_s
    part_c = c.phase("Partition road").io_s + c.phase("Partition hydro").io_s
    assert part_c <= part_nc * 1.05


def test_refinement_shared_between_pbsm_and_rtree(benchmark, breakdowns):
    def run():
        return (
            breakdowns[("pbsm", False)].phase("Refinement"),
            breakdowns[("rtree", False)].phase("Refinement"),
            breakdowns[("pbsm", False)],
            breakdowns[("rtree", False)],
        )

    pbsm_ref, rtree_ref, pbsm, rtree = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Paper: "PBSM and the R-tree based join algorithm have the same elapsed
    # time for performing the refinement step."
    assert pbsm_ref.total_s == pytest.approx(rtree_ref.total_s, rel=0.5)
    # Refinement is a much larger *fraction* of PBSM than of the R-tree join
    # (paper: ~45% vs ~23%).
    assert pbsm_ref.total_s / pbsm.total_s > rtree_ref.total_s / rtree.total_s
