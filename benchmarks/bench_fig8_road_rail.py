"""Figure 8 — Road ⋈ Rail: the small-inner-input case.

Paper shape: because the Rail data (2.4 MB) and its index (1 MB) fit in the
buffer pool, INL beats the R-tree join here (the R-tree join wastes ~85% of
its time building the index on the large Road input); PBSM remains best.
"""

from benchmarks.common import (
    assert_same_results,
    emit_sweep_table,
    run_three_algorithms,
    tiger_workload,
)
from repro.bench import BENCH_SCALE


def test_fig8_road_rail_sweep(benchmark):
    def run():
        results = run_three_algorithms(tiger_workload("road", "rail"))
        emit_sweep_table(
            f"Figure 8: Road x Rail join time, no indices (scale={BENCH_SCALE})",
            "fig8_road_rail.txt",
            results,
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_same_results(results)

    largest = max(results)
    smallest = min(results)
    for paper_mb, per_algo in results.items():
        pbsm = per_algo["PBSM"].report.total_s
        rtree = per_algo["R-tree"].report.total_s
        inl = per_algo["INL"].report.total_s
        # The paper's headline for this figure: with a small inner input
        # (Rail and its index fit in the pool) INL outperforms the R-tree
        # join, whose cost is dominated by indexing the big Road input.
        assert inl < rtree, f"INL {inl:.1f} !< R-tree {rtree:.1f} @ {paper_mb}MB"
        # PBSM also avoids indexing Road and beats the R-tree join (at the
        # smallest buffer the two thrash to within measurement noise).
        slack = 1.1 if paper_mb == smallest else 1.0
        assert pbsm < rtree * slack, (
            f"PBSM {pbsm:.1f} !< R-tree {rtree:.1f} @ {paper_mb}MB"
        )

    # The R-tree join's cost is dominated by indexing the *large* input
    # (paper: ~85% of total is the Road index build; at our scale the CPU
    # profile shifts, so we assert the robust version of the claim — the
    # Road build dwarfs the Rail build and is the largest single phase).
    rtree_report = results[largest]["R-tree"].report
    build_road = rtree_report.phase("Build road Index").total_s
    build_rail = rtree_report.phase("Build rail Index").total_s
    assert build_road > 5 * build_rail
    assert build_road >= 0.9 * max(p.total_s for p in rtree_report.phases)
