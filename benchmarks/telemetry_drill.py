"""Telemetry + warehouse drill: live scrape, regression gate, determinism.

Three phases, each against real ``python -m repro`` subprocesses:

**A — live scrape.** A ``repro serve --telemetry-interval`` server takes
~20 mixed queries; the ``metrics`` op's Prometheus-style exposition must
parse and its counters must agree with the ``stats`` op; an idle server
must scrape byte-identically twice; the ``telemetry`` op must report
sampler ticks and a populated slow log; and ``repro top <port-file>
--once`` must render a frame — including through a closed pipe (the
dashboard is scripted in CI, so SIGPIPE safety is part of the contract).

**B — regression gate.** Two recorded serve runs over the same query
set: a clean one, and one with the seeded ``deadline_stall`` fault plan
(every miss waits out a ~2 s stall).  ``repro runs compare fast slow
--gate latency_p50_s`` must exit non-zero on the seeded regression, and
a self-compare must pass — the gate fires on real slowdowns and only on
real slowdowns.

**C — warehouse determinism.** Two chaos flight-recorder journals are
indexed and diffed twice; the rendered output must be byte-identical
across invocations (the acceptance bar for the whole warehouse: the
index is a pure function of file contents).

Run locally with ``PYTHONPATH=src python benchmarks/telemetry_drill.py``;
CI runs it in the ``telemetry`` job and uploads the out directory.
"""

import signal
import subprocess
import sys
from pathlib import Path

from repro.obs import parse_exposition
from repro.serve import ServeClient, read_port_file, wait_for_server

QUERY_MIX = [
    {"dataset": "road_hydro", "scale": 0.006, "predicate": "intersects"},
    {"dataset": "road_rail", "scale": 0.006, "predicate": "intersects"},
    {"dataset": "landuse_island", "scale": 0.004, "predicate": "contains"},
    {"dataset": "road_hydro", "scale": 0.004, "predicate": "intersects"},
]
N_QUERIES = 20
STALL_S = 2.0


def repro(*args, check=True, timeout=300):
    """Run ``python -m repro <args>`` and return the CompletedProcess."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *map(str, args)],
        capture_output=True, text=True, timeout=timeout,
    )
    if check and result.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(map(str, args))} exited "
            f"{result.returncode}:\n{result.stdout}{result.stderr}"
        )
    return result


def start_serve(out: Path, *extra):
    port_file = out / "port.txt"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--cache-dir", str(out / "cache"),
            "--out", str(out),
            "--port-file", str(port_file),
            "--workers", "2",
            *map(str, extra),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = read_port_file(port_file, timeout_s=60.0)
    wait_for_server("127.0.0.1", port, timeout_s=60.0)
    return proc, port


def drain(proc) -> str:
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=120.0)
    assert proc.returncode == 0, f"server exited {proc.returncode}:\n{output}"
    assert "drained" in output
    return output


def phase_a_live_scrape(root: Path) -> None:
    out = root / "live"
    out.mkdir(parents=True)
    proc, port = start_serve(out, "--telemetry-interval", "0.2")
    try:
        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            for i in range(N_QUERIES):
                fields = dict(QUERY_MIX[i % len(QUERY_MIX)], workers=2)
                response = client.join(**fields)
                assert response.get("ok"), response
            stats = client.stats()["stats"]
            first = client.metrics()
            second = client.metrics()
            telemetry = client.telemetry()["telemetry"]

        # The exposition parses and its counters agree with the stats op.
        assert first["ok"] and first["content_type"].startswith("text/plain")
        parsed = parse_exposition(first["exposition"])
        for metric, expected in (
            ("repro_serve_completed", stats["outcomes"]["completed"]),
            ("repro_serve_admitted", stats["admitted"]),
            ("repro_serve_cache_hits", stats["hits"]),
            ("repro_serve_cache_misses", stats["misses"]),
        ):
            got = parsed[metric]["value"]
            assert got == expected, f"{metric}: exposition {got} != stats {expected}"
        latency = parsed["repro_serve_latency_s"]
        assert latency["type"] == "histogram"
        assert latency["count"] == stats["outcomes"]["completed"]
        # Idle server: repeated scrapes are byte-identical.
        assert first["exposition"] == second["exposition"], (
            "metrics exposition drifted between two idle scrapes"
        )

        # The background sampler ticked and the slow log filled.
        assert telemetry["sampling"]["ticks"] > 0
        assert telemetry["series"], "sampler ticked but recorded no series"
        assert telemetry["slow_log"], "20 queries left an empty slow log"
        slowest = telemetry["slow_log"][0]
        assert {"queue_s", "materialise_s", "execute_s"} <= set(
            slowest["phases"]
        )

        # The dashboard renders one frame and exits 0 — and survives its
        # stdout pipe closing early (head -1), the scripted-CI posture.
        port_file = out / "port.txt"
        top = repro("top", port_file, "--once")
        assert "repro serve" in top.stdout and "slow log" in top.stdout
        piped = subprocess.run(
            f"{sys.executable} -m repro top {port_file} --once | head -1",
            shell=True, capture_output=True, text=True, timeout=120,
        )
        assert piped.returncode == 0
        assert "Traceback" not in piped.stderr, piped.stderr
    finally:
        if proc.poll() is None:
            drain(proc)
    print(
        f"phase A ok: {N_QUERIES} queries, "
        f"{telemetry['sampling']['ticks']} sampler ticks, "
        f"{len(parsed)} exposed metrics, top renders"
    )


def run_recorded(out: Path, *extra) -> None:
    out.mkdir(parents=True)
    proc, port = start_serve(out, *extra)
    try:
        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            for fields in QUERY_MIX:
                response = client.join(workers=2, **fields)
                assert response.get("ok"), response
    finally:
        if proc.poll() is None:
            drain(proc)


def phase_b_regression_gate(root: Path) -> None:
    fast = root / "fast"
    slow = root / "slow"
    run_recorded(fast)
    run_recorded(
        slow,
        "--faults", "deadline_stall", "--fault-seed", "3",
        "--fault-hang-s", STALL_S,
    )

    # The seeded stall must trip the latency gate...
    gated = repro(
        "runs", "compare", fast, slow,
        "--gate", "latency_p50_s", "--threshold", "0.5",
        check=False,
    )
    assert gated.returncode == 4, (
        f"seeded ~{STALL_S}s stall did not trip the gate "
        f"(exit {gated.returncode}):\n{gated.stdout}{gated.stderr}"
    )
    assert "REGRESSION" in gated.stdout
    # ...and a self-compare must pass it.
    clean = repro(
        "runs", "compare", fast, fast,
        "--gate", "latency_p50_s", "--threshold", "0.5",
    )
    assert "REGRESSION" not in clean.stdout
    print(
        "phase B ok: gate exits 4 on the seeded stall, 0 on self-compare"
    )


def phase_c_determinism(root: Path) -> None:
    for name, seed in (("chaosA", 42), ("chaosB", 7)):
        repro(
            "chaos", "--plan", "worker_faults", "--seed", seed,
            "--scale", "0.002", "--workers", "2",
            "--out", root / name, "--json",
        )
    once = repro("runs", "compare", root / "chaosA", root / "chaosB")
    twice = repro("runs", "compare", root / "chaosA", root / "chaosB")
    assert once.stdout == twice.stdout, (
        "runs compare over the same two journals differed across invocations"
    )
    listing = repro("runs", "list", root)
    relisting = repro("runs", "list", root)
    assert listing.stdout == relisting.stdout
    assert "chaosA" in listing.stdout and "chaosB" in listing.stdout
    print(
        f"phase C ok: compare and list byte-identical across invocations "
        f"({len(once.stdout.splitlines())} compare rows)"
    )


def main(out_dir: str = "telemetry-out") -> int:
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    phase_a_live_scrape(root)
    phase_b_regression_gate(root)
    phase_c_determinism(root)
    print("telemetry drill ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
