"""End-to-end smoke for the serving tier: real server process, real client.

Spawns ``python -m repro serve`` as a subprocess, fires ~20 mixed queries
at it through :class:`repro.serve.ServeClient`, and verifies the three
properties CI cares about:

* the cache works — the mix repeats queries, so the hit rate must be > 0;
* every served answer is **byte-identical** to a one-shot
  ``parallel_join`` of the same spec (and all responses for the same spec
  agree with each other, hit or miss);
* SIGTERM drains cleanly — exit status 0, the "drained" summary printed,
  and the journals in the out directory intact for artifact upload.

Run it locally with ``PYTHONPATH=src python benchmarks/serve_smoke.py``;
CI runs it in the ``serve-smoke`` job and uploads the out directory.
"""

import json
import random
import signal
import subprocess
import sys
from pathlib import Path

from repro.parallel import parallel_join
from repro.serve import (
    QuerySpec,
    ServeClient,
    read_port_file,
    result_digest,
    wait_for_server,
)

N_QUERIES = 20
MIX_SEED = 96

QUERY_MIX = [
    {"dataset": "road_hydro", "scale": 0.006, "predicate": "intersects"},
    {"dataset": "road_rail", "scale": 0.006, "predicate": "intersects"},
    {"dataset": "landuse_island", "scale": 0.004, "predicate": "contains"},
    {"dataset": "road_hydro", "scale": 0.004, "predicate": "intersects"},
]


def main(out_dir: str = "serve-out") -> int:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    port_file = out / "port.txt"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--cache-dir", str(out / "cache"),
            "--out", str(out),
            "--port-file", str(port_file),
            "--workers", "2",
            "--max-inflight", "2",
            "--max-queue", "8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = read_port_file(port_file, timeout_s=60.0)
        wait_for_server("127.0.0.1", port, timeout_s=60.0)

        rng = random.Random(MIX_SEED)
        responses = []
        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            for _ in range(N_QUERIES):
                fields = dict(rng.choice(QUERY_MIX), workers=2)
                response = client.join(**fields)
                assert response.get("ok"), response
                response["_spec"] = json.dumps(fields, sort_keys=True)
                responses.append(response)
            stats = client.stats()["stats"]

        hits = [r for r in responses if r["source"] in ("hit", "coalesced")]
        assert hits, "no cache hits across the mixed queries"

        by_spec = {}
        for r in responses:
            by_spec.setdefault(r["_spec"], set()).add(r["result_sha256"])
        for key, seen in sorted(by_spec.items()):
            assert len(seen) == 1, f"{key} served {len(seen)} digests"
            spec = QuerySpec(**json.loads(key))
            tuples_r, tuples_s = spec.generate()
            one_shot = parallel_join(
                tuples_r, tuples_s, spec.predicate_fn,
                backend="process", workers=spec.workers,
            )
            assert result_digest(one_shot.pairs) == next(iter(seen)), (
                f"served result for {key} != one-shot parallel run"
            )

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=120.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    print(output)
    assert proc.returncode == 0, f"server exited {proc.returncode}"
    assert "drained" in output, "clean-shutdown summary missing"
    print(
        f"serve smoke ok: {len(responses)} queries, {len(hits)} hits "
        f"({len(hits) / len(responses):.0%}), {len(by_spec)} distinct joins, "
        f"server stats: admitted={stats['admitted']} "
        f"completed={stats['completed']} rejected={stats['rejected']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
