"""Chaos drill for the serve tier's resilience mechanisms.

Two phases, each against a real ``python -m repro serve`` subprocess:

**Phase A — deadlines and the circuit breaker.**  The server runs the
seeded ``deadline_stall`` fault plan (one worker hang pinned to one
partition pair, stretched past the query deadline).  The drill asserts:

* a stalled query returns the *typed* ``deadline_exceeded`` reject
  within its deadline plus a bounded grace, not a hang or a 500;
* a concurrent deadline-free query rides out the stall (and the pool
  abandonment the deadlined neighbour triggers) to a digest
  byte-identical to a fault-free one-shot run;
* two pool retirements trip the breaker (threshold 2), after which
  queries shed to the serial path and come back ``source: "degraded"``
  with byte-identical digests;
* the CLI maps ``repro query --timeout`` onto ``deadline_s`` and exits
  non-zero on the typed reject;
* ``repro report`` renders the deadline and breaker events from the
  journals the drill just produced.

**Phase B — the cache scrubber.**  A clean server fills a cache entry;
the drill corrupts its result log at the ``scrub_corruption`` plan's
seeded ordinal, then waits for the background scrubber to quarantine
the entry.  A re-query must come back a cold miss with the identical
digest, and ``merge.duplicates_dropped`` must read 0 throughout.

Run locally with ``PYTHONPATH=src python benchmarks/serve_chaos.py``;
CI runs it in the ``serve-chaos`` job and uploads both out directories.
"""

import json
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.faults import load_plan
from repro.parallel import parallel_join
from repro.serve import (
    QuerySpec,
    ServeClient,
    read_port_file,
    result_digest,
    wait_for_server,
)

WORKERS = 2
FAULT_SEED = 3
FAULT_PAIRS = 8  # matches the specs' default partitions (workers * 4)
HANG_S = 4.0
DEADLINE_S = 1.5
DEADLINE_GRACE_S = 3.0  # poll slice + pool abandonment + reject write

STALLED = {"dataset": "road_hydro", "scale": 0.004, "workers": WORKERS}
NEIGHBOUR = {"dataset": "road_rail", "scale": 0.004, "workers": WORKERS}
SECOND = {"dataset": "road_hydro", "scale": 0.003, "workers": WORKERS}


def one_shot_digest(fields):
    spec = QuerySpec(**fields)
    tuples_r, tuples_s = spec.generate()
    result = parallel_join(
        tuples_r, tuples_s, spec.predicate_fn,
        backend="process", workers=spec.workers,
    )
    return result_digest(result.pairs)


def start_server(out, *extra):
    out.mkdir(parents=True, exist_ok=True)
    port_file = out / "port.txt"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--cache-dir", str(out / "cache"),
            "--out", str(out),
            "--port-file", str(port_file),
            "--workers", str(WORKERS),
            "--max-inflight", "2",
            "--max-queue", "8",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    port = read_port_file(port_file, timeout_s=60.0)
    wait_for_server("127.0.0.1", port, timeout_s=60.0)
    return proc, port


def drain(proc):
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=120.0)
    assert proc.returncode == 0, f"server exited {proc.returncode}:\n{output}"
    assert "drained" in output, f"clean-shutdown summary missing:\n{output}"
    return output


def journal_types(path):
    return [
        json.loads(line)["type"] for line in path.read_text().splitlines()
    ]


def phase_a(out: Path) -> None:
    print("== phase A: deadlines + circuit breaker ==")
    baselines = {
        key: one_shot_digest(fields)
        for key, fields in (
            ("stalled", STALLED), ("neighbour", NEIGHBOUR),
            ("second", SECOND),
        )
    }
    proc, port = start_server(
        out,
        "--faults", "deadline_stall",
        "--fault-seed", str(FAULT_SEED),
        "--fault-pairs", str(FAULT_PAIRS),
        "--fault-hang-s", str(HANG_S),
        "--breaker-threshold", "3",
        "--breaker-window", "120",
        "--breaker-cooldown", "600",
    )
    try:
        neighbour_response = {}

        def neighbour():
            with ServeClient("127.0.0.1", port, timeout=300.0) as client:
                neighbour_response.update(client.join(**NEIGHBOUR))

        # The deadline-free neighbour stalls on its own hang pair and
        # then survives the stalled query's pool abandonment.
        rider = threading.Thread(target=neighbour, daemon=True)
        rider.start()

        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            started = time.monotonic()
            stalled = client.join(deadline_s=DEADLINE_S, **STALLED)
            elapsed = time.monotonic() - started
            assert not stalled.get("ok"), stalled
            assert stalled["error"] == "deadline_exceeded", stalled
            assert stalled["completed_pairs"] + stalled["pending_pairs"] \
                == FAULT_PAIRS, stalled
            assert elapsed < DEADLINE_S + DEADLINE_GRACE_S, (
                f"typed reject took {elapsed:.2f}s against a "
                f"{DEADLINE_S}s deadline"
            )
            print(f"  deadline reject in {elapsed:.2f}s "
                  f"({stalled['completed_pairs']} pairs committed)")

            rider.join(timeout=120.0)
            assert not rider.is_alive(), "neighbour query never finished"
            assert neighbour_response.get("ok"), neighbour_response
            assert neighbour_response["result_sha256"] \
                == baselines["neighbour"], "neighbour digest diverged"
            print("  concurrent neighbour digest-identical "
                  f"(source={neighbour_response['source']})")

            # The CLI's --timeout maps to deadline_s: against the still
            # pool-backed (and still stalling) server it must exit 1 on
            # the typed reject.  Fresh scale so the cache cannot answer.
            cli = subprocess.run(
                [
                    sys.executable, "-m", "repro", "query",
                    "--port", str(port), "--timeout", str(DEADLINE_S),
                    "--dataset", "road_hydro", "--scale", "0.005",
                    "--workers", str(WORKERS),
                ],
                capture_output=True, text=True, timeout=120,
            )
            assert cli.returncode == 1, (
                cli.returncode, cli.stdout, cli.stderr,
            )
            cli_response = json.loads(cli.stdout)
            assert cli_response["error"] == "deadline_exceeded", cli_response
            print("  CLI --timeout surfaced the typed reject (exit 1)")

            # Third stalled query: third pool retirement, breaker opens.
            second = client.join(deadline_s=DEADLINE_S, **SECOND)
            assert not second.get("ok"), second
            assert second["error"] == "deadline_exceeded", second

            stats = client.stats()["stats"]
            assert stats["breaker"]["state"] == "open", stats["breaker"]
            assert stats["breaker"]["trips"] == 1, stats["breaker"]

            # Shed queries answer degraded and byte-identical — including
            # the formerly stalled spec (worker faults never fire on the
            # serial path).
            for key, fields in (("second", SECOND), ("stalled", STALLED)):
                shed = client.join(**fields)
                assert shed.get("ok"), shed
                assert shed["source"] == "degraded", shed
                assert shed["result_sha256"] == baselines[key], (
                    f"degraded digest diverged for {key}"
                )
            print("  breaker open; degraded answers digest-identical")

        with ServeClient("127.0.0.1", port) as client:
            stats = client.stats()["stats"]
        assert stats["outcomes"]["deadline_exceeded"] >= 3, stats["outcomes"]
        assert stats["outcomes"]["degraded"] >= 2, stats["outcomes"]
        assert stats["duplicates_dropped"] == 0, stats
    finally:
        if proc.poll() is None:
            output = drain(proc)
        else:
            output, _ = proc.communicate()
            raise AssertionError(f"server died early:\n{output}")

    assert "deadline-exceeded" in output, output

    # The per-query journal of a stalled query renders the deadline
    # line; the service journal carries the breaker transition.  (The
    # concurrent neighbour races the stalled query for sequence numbers,
    # so find the deadlined journal instead of hardcoding one.)
    deadlined = [
        qdir for qdir in sorted(out.glob("query-*"))
        if "deadline_exceeded" in journal_types(qdir / "journal.jsonl")
    ]
    assert deadlined, "no query journal recorded the deadline"
    report = subprocess.run(
        [sys.executable, "-m", "repro", "report", str(deadlined[0])],
        capture_output=True, text=True, timeout=120,
    )
    assert report.returncode == 0, report.stderr
    assert "deadline exceeded" in report.stdout, report.stdout
    assert "breaker_transition" in journal_types(out / "serve.jsonl")
    print("  report renders the deadline; breaker transition journaled")


def phase_b(out: Path) -> None:
    print("== phase B: cache scrubber ==")
    plan = load_plan(
        "scrub_corruption", seed=FAULT_SEED, num_pairs=FAULT_PAIRS
    )
    assert plan.cache_corruption_ordinals, "plan lost its ordinals"
    proc, port = start_server(out, "--scrub-interval", "0.5")
    try:
        with ServeClient("127.0.0.1", port, timeout=300.0) as client:
            first = client.join(**STALLED)
            assert first.get("ok") and first["source"] == "miss", first

            log = out / "cache" / first["run_id"] / "results.log"
            data = bytearray(log.read_bytes())
            offset = plan.cache_corruption_ordinals[0] % len(data)
            data[offset] ^= 0xFF
            log.write_bytes(bytes(data))
            print(f"  flipped byte {offset}/{len(data)} of {log.name}")

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                stats = client.stats()["stats"]
                if stats["scrub"]["quarantined"] >= 1:
                    break
                time.sleep(0.1)
            assert stats["scrub"]["quarantined"] == 1, stats["scrub"]
            assert (out / "cache" / "quarantine" / first["run_id"]).is_dir()
            print("  scrubber quarantined the corrupt entry")

            again = client.join(**STALLED)
            assert again.get("ok"), again
            assert again["source"] == "miss", again  # cold, not a lie
            assert again["result_sha256"] == first["result_sha256"], (
                "post-quarantine digest diverged"
            )
            stats = client.stats()["stats"]
            assert stats["duplicates_dropped"] == 0, stats
            assert stats["scrub"]["errors"] == 0, stats["scrub"]
        print("  re-query cold and digest-identical")
    finally:
        if proc.poll() is None:
            drain(proc)
        else:
            output, _ = proc.communicate()
            raise AssertionError(f"server died early:\n{output}")

    types = journal_types(out / "serve.jsonl")
    assert "cache_scrub" in types
    assert "cache_quarantine" in types
    print("  scrub + quarantine events journaled")


def main(out_dir: str = "serve-chaos-out") -> int:
    root = Path(out_dir)
    phase_a(root / "phase-a")
    phase_b(root / "phase-b")
    print("serve chaos ok: deadlines, breaker shed, scrub quarantine — "
          "all digests byte-identical, 0 duplicates dropped")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
