"""Figures 5 & 6 — replication overhead of the tiled partitioning function.

Figure 5 (TIGER roads, 16 partitions): replication overhead grows with the
number of tiles but stays modest (paper: +4.8% at 4000 tiles), with
round-robin showing dips ("spikes" downward) where whole columns map to a
single partition.

Figure 6 (Sequoia polygons): same shape but a much higher overhead, because
land-use polygons are large relative to a tile.
"""

from repro.bench import BENCH_SCALE, ResultTable, fresh_sequoia, fresh_tiger
from repro.core import SCHEME_HASH, SCHEME_ROUND_ROBIN, profile_partitioning

TILE_SWEEP = (64, 256, 1024, 2048, 4096)
PARTITIONS = 16


def _replication_curves(rel):
    mbrs = [t.mbr for _oid, t in rel.scan()]
    universe = rel.universe
    hash_curve, rr_curve = [], []
    for tiles in TILE_SWEEP:
        hash_curve.append(
            profile_partitioning(
                mbrs, universe, PARTITIONS, tiles, SCHEME_HASH
            ).replication_overhead
        )
        rr_curve.append(
            profile_partitioning(
                mbrs, universe, PARTITIONS, tiles, SCHEME_ROUND_ROBIN
            ).replication_overhead
        )
    return hash_curve, rr_curve


def test_fig5_replication_tiger(benchmark):
    def run():
        _db, rels = fresh_tiger(8.0, include=("road",))
        hash_curve, rr_curve = _replication_curves(rels["road"])
        table = ResultTable(
            f"Figure 5: replication overhead %, TIGER roads, "
            f"{PARTITIONS} partitions (scale={BENCH_SCALE})",
            ["tiles", "hash %", "round robin %"],
        )
        for tiles, h, r in zip(TILE_SWEEP, hash_curve, rr_curve):
            table.add(tiles, 100 * h, 100 * r)
        table.emit("fig5_replication_tiger.txt")
        return hash_curve, rr_curve

    hash_curve, rr_curve = benchmark.pedantic(run, rounds=1, iterations=1)
    # Overhead grows with tile count and stays modest for polyline data
    # (paper: ~4.8% at 4000 tiles; scaled features are a bit larger).
    assert hash_curve[-1] >= hash_curve[0]
    assert hash_curve[-1] < 0.40


def test_fig6_replication_sequoia(benchmark):
    def run():
        _db, rels = fresh_sequoia(8.0)
        hash_curve, rr_curve = _replication_curves(rels["polygon"])
        table = ResultTable(
            f"Figure 6: replication overhead %, Sequoia polygons, "
            f"{PARTITIONS} partitions (scale={BENCH_SCALE})",
            ["tiles", "hash %", "round robin %"],
        )
        for tiles, h, r in zip(TILE_SWEEP, hash_curve, rr_curve):
            table.add(tiles, 100 * h, 100 * r)
        table.emit("fig6_replication_sequoia.txt")
        return hash_curve, rr_curve

    seq_hash, _seq_rr = benchmark.pedantic(run, rounds=1, iterations=1)

    # Cross-figure claim: polygon replication overhead far exceeds the
    # road overhead at the same tile counts (paper: Fig 6 >> Fig 5).
    _db, rels = fresh_tiger(8.0, include=("road",))
    tiger_hash, _ = _replication_curves(rels["road"])
    assert seq_hash[-1] > 2 * tiger_hash[-1]
