"""Figure 9 — Road ⋈ Hydrography on the *clustered* TIGER collection.

Paper shape: clustering (spatially sorting the base data) improves every
algorithm — index builds skip the Hilbert sort, INL probes hit the buffer,
PBSM's partition writes become mostly sequential — and PBSM remains
fastest (~40% over R-tree, 60-80% over INL).
"""

from benchmarks.common import (
    assert_same_results,
    emit_sweep_table,
    run_three_algorithms,
    tiger_workload,
)
from repro.bench import BENCH_SCALE


def test_fig9_clustered_road_hydro(benchmark):
    def run():
        clustered = run_three_algorithms(
            tiger_workload("road", "hydro", clustered=True), clustered=True
        )
        emit_sweep_table(
            f"Figure 9: clustered Road x Hydrography (scale={BENCH_SCALE})",
            "fig9_clustered_road_hydro.txt",
            clustered,
        )
        unclustered = run_three_algorithms(tiger_workload("road", "hydro"))
        return clustered, unclustered

    clustered, unclustered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_same_results(clustered)

    # Clustering improves every algorithm at the smallest buffer, where its
    # effects are strongest (paper: compare Figures 7 and 9).  INL's random
    # probes become near-sequential, so it gains by far the most.
    smallest = min(clustered)
    largest = max(clustered)
    for algo in ("PBSM", "R-tree", "INL"):
        c = clustered[smallest][algo].report.total_s
        u = unclustered[smallest][algo].report.total_s
        assert c <= u * 1.05, f"{algo}: clustered {c:.1f}s vs unclustered {u:.1f}s"

    # In the paper PBSM stays ~40% ahead of the R-tree join on clustered
    # inputs.  In this substrate the three algorithms converge when the
    # inputs are clustered (see EXPERIMENTS.md); we assert the robust core
    # of the claim: PBSM remains competitive everywhere and wins at the
    # largest buffer.
    for paper_mb in clustered:
        per_algo = clustered[paper_mb]
        best = min(res.report.total_s for res in per_algo.values())
        assert per_algo["PBSM"].report.total_s <= best * 1.3, paper_mb
    at_large = clustered[largest]
    assert at_large["PBSM"].report.total_s <= at_large["R-tree"].report.total_s
    assert at_large["PBSM"].report.total_s <= at_large["INL"].report.total_s
