"""§4.4 claim — the plane-sweep refinement test vs the naive one.

Paper: "For performing the refinement step, which in this case requires
examining two polylines for intersection, a plane-sweeping algorithm was
used.  Without this, the cost of the refinement step increases by 62%."
"""

from repro import PBSMJoin, intersects
from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger
from repro.core import intersects_naive

BUFFER = 8.0


def test_refinement_planesweep_vs_naive(benchmark):
    def run():
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        sweep_res = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
        naive_res = PBSMJoin(db.pool).run(
            rels["road"], rels["hydro"], intersects_naive
        )
        assert sweep_res.pairs == naive_res.pairs  # same exact answer

        sweep_s = sweep_res.report.phase("Refinement").total_s
        naive_s = naive_res.report.phase("Refinement").total_s
        table = ResultTable(
            f"Refinement: plane-sweep vs naive polyline test (scale={BENCH_SCALE})",
            ["refinement variant", "refinement s", "join total s"],
        )
        table.add("plane-sweep", sweep_s, sweep_res.report.total_s)
        table.add("naive O(n*m)", naive_s, naive_res.report.total_s)
        table.add("naive / sweep", naive_s / sweep_s, "-")
        table.emit("refinement_planesweep.txt")
        return sweep_s, naive_s

    sweep_s, naive_s = benchmark.pedantic(run, rounds=1, iterations=1)
    # Paper: naive costs ~1.62x the sweep.  With 8/19-point chains the
    # asymptotic gap is modest; require the sweep to be no slower and the
    # naive variant measurably more expensive.
    assert naive_s > sweep_s * 0.95
