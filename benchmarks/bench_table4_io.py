"""Table 4 — detailed cost and I/O breakdown, Road ⋈ Hydrography.

For each algorithm and each buffer size, the paper lists every component's
total cost, I/O cost, and the I/O contribution percentage.  Its headline
observation: **CPU costs dominate I/O costs** for all the spatial join
algorithms (spatial operations are computationally intensive and SHORE
clusters its dirty-page writes), except INL at tiny buffers where random
fetches blow up.
"""

from repro import IndexedNestedLoopsJoin, PBSMJoin, RTreeJoin, intersects
from repro.bench import (
    BENCH_SCALE,
    PAPER_BUFFER_MB,
    ResultTable,
    fresh_tiger,
    scaled_buffer_mb,
)
from repro.bench.harness import RESULTS_DIR
from repro.obs.bench import bench_record, write_bench_file
from repro.storage.disk import PAGE_SIZE


def _disk_block(report) -> dict:
    """The record's storage-pressure block: partition-phase writes are the
    run's spill footprint (these single-node runs are unconstrained, so
    only ``spill_bytes`` is meaningful)."""
    spill_pages = sum(
        p.page_writes for p in report.phases if p.name.startswith("Partition")
    )
    spill_bytes = spill_pages * PAGE_SIZE
    return {"spill_bytes": spill_bytes, "by_category": {"spill": spill_bytes}}


def test_table4_io_breakdown(benchmark):
    def run():
        reports = {}
        for paper_mb in PAPER_BUFFER_MB:
            for name, ctor in (
                ("PBSM", PBSMJoin),
                ("R-Tree Join", RTreeJoin),
                ("NL-Idx", IndexedNestedLoopsJoin),
            ):
                db, rels = fresh_tiger(paper_mb, include=("road", "hydro"))
                res = ctor(db.pool).run(rels["road"], rels["hydro"], intersects)
                reports[(name, paper_mb)] = res.report

        table = ResultTable(
            f"Table 4: cost breakdown, Road x Hydrography (scale={BENCH_SCALE}; "
            "columns per paper buffer size: total s / io s / io %)",
            ["Algorithm", "Component",
             *(f"{mb:g}MB tot/io/io%" for mb in sorted(PAPER_BUFFER_MB, reverse=True))],
        )
        algos = ("PBSM", "R-Tree Join", "NL-Idx")
        for name in algos:
            component_names = [
                p.name for p in reports[(name, PAPER_BUFFER_MB[0])].phases
            ] + ["TOTAL"]
            for comp in component_names:
                cells = []
                for mb in sorted(PAPER_BUFFER_MB, reverse=True):
                    rep = reports[(name, mb)]
                    if comp == "TOTAL":
                        tot, io = rep.total_s, rep.io_s
                    else:
                        phase = rep.phase(comp)
                        tot, io = phase.total_s, phase.io_s
                    pct = 100 * io / tot if tot else 0.0
                    cells.append(f"{tot:8.2f}/{io:7.2f}/{pct:4.1f}")
                table.add(name, comp, *cells)
        table.emit("table4_io_breakdown.txt")
        write_bench_file(
            "table4_io_breakdown",
            [
                bench_record(
                    reports[(name, mb)],
                    scale=BENCH_SCALE,
                    buffer_mb=mb,
                    buffer_mb_scaled=scaled_buffer_mb(mb, BENCH_SCALE),
                    algorithm=name,
                    disk=_disk_block(reports[(name, mb)]),
                )
                for mb in sorted(PAPER_BUFFER_MB)
                for name in algos
            ],
            RESULTS_DIR,
        )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    biggest = max(PAPER_BUFFER_MB)
    smallest = min(PAPER_BUFFER_MB)
    # The paper's absolute CPU:I/O balance (CPU dominating at 12-30% I/O)
    # reflects Paradise's C++ per-tuple CPU cost on a SPARC-10; our
    # substrate pairs (fast) Python-measured CPU with a (slow) simulated
    # 1996 disk, so only the *relative* shapes are asserted — see
    # EXPERIMENTS.md for the discussion.
    #
    # Shape 1: every algorithm's I/O fraction grows as the buffer shrinks.
    for name in ("PBSM", "R-Tree Join", "NL-Idx"):
        assert (
            reports[(name, smallest)].io_fraction
            >= reports[(name, biggest)].io_fraction
        ), name
    # Shape 2 (the paper's INL observation): INL's I/O contribution at the
    # small buffer exceeds everyone else's — random fetches dominate it.
    inl_small = reports[("NL-Idx", smallest)].io_fraction
    assert inl_small > reports[("PBSM", smallest)].io_fraction
    assert inl_small > reports[("R-Tree Join", smallest)].io_fraction
    # Shape 3: I/O cost shrinks monotonically with buffer size.
    for name in ("PBSM", "R-Tree Join", "NL-Idx"):
        ios = [reports[(name, mb)].io_s for mb in sorted(PAPER_BUFFER_MB)]
        assert ios[0] >= ios[-1], f"{name}: {ios}"
