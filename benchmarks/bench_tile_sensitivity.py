"""§4.3 claim — the number of tiles barely affects PBSM's execution time.

Paper: "We explored the effect of the number of tiles on the execution time
of PBSM, but found that changing the number of tiles had a very small
effect on the overall execution time (less than 5%)."  (The paper settled
on 1024 tiles.)
"""

from repro import PBSMConfig, PBSMJoin, intersects
from repro.bench import BENCH_SCALE, ResultTable, fresh_tiger, scaled_buffer_mb
from repro.bench.harness import RESULTS_DIR
from repro.obs.bench import bench_record, write_bench_file

TILE_SWEEP = (256, 1024, 4096)
BUFFER = 8.0


def test_tile_count_sensitivity(benchmark):
    def run():
        times = {}
        counts = set()
        records = []
        for tiles in TILE_SWEEP:
            db, rels = fresh_tiger(BUFFER, include=("road", "hydro"))
            cfg = PBSMConfig(num_tiles=tiles)
            res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
            times[tiles] = res.report.total_s
            counts.add(len(res.pairs))
            record = bench_record(
                res.report,
                scale=BENCH_SCALE,
                buffer_mb=BUFFER,
                buffer_mb_scaled=scaled_buffer_mb(BUFFER, BENCH_SCALE),
                algorithm=f"PBSM/tiles={tiles}",
            )
            record.setdefault("notes", {})["num_tiles"] = tiles
            records.append(record)
        table = ResultTable(
            f"PBSM total time vs number of tiles (scale={BENCH_SCALE})",
            ["tiles", "sim seconds"],
        )
        for tiles in TILE_SWEEP:
            table.add(tiles, times[tiles])
        table.emit("tile_sensitivity.txt")
        write_bench_file("tile_sensitivity", records, RESULTS_DIR)
        assert len(counts) == 1  # identical results at every tile count
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    spread = (max(times.values()) - min(times.values())) / min(times.values())
    # Paper says <5%; allow slack for wall-clock noise in the CPU part.
    assert spread < 0.30, f"tile sensitivity {spread:.0%}"
