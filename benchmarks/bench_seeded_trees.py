"""Seeded trees (LR94/LR95) vs PBSM — the paper's cited alternative for the
missing-index case (§1/§2: "One solution to this problem is to build a
spatial index on both inputs and then use a tree join algorithm [LR95]").

The paper argues PBSM is the better answer; this benchmark runs the
LR95-style build-seeded-trees-then-join pipeline next to PBSM on the same
workload and checks the results agree.
"""

from repro import PBSMJoin, intersects
from repro.bench import BENCH_SCALE, PAPER_BUFFER_MB, ResultTable, fresh_tiger
from repro.index import bulk_load_rstar
from repro.joins.seeded import SeededTreeJoin


def test_seeded_trees_vs_pbsm(benchmark):
    def run():
        results = {}
        for paper_mb in PAPER_BUFFER_MB:
            db, rels = fresh_tiger(paper_mb, include=("road", "hydro"))
            pbsm = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)

            db, rels = fresh_tiger(paper_mb, include=("road", "hydro"))
            lr95 = SeededTreeJoin(db.pool).run(
                rels["road"], rels["hydro"], intersects
            )

            db, rels = fresh_tiger(paper_mb, include=("road", "hydro"))
            idx_s = bulk_load_rstar(db.pool, rels["hydro"])
            db.pool.clear()
            lr94 = SeededTreeJoin(db.pool).run(
                rels["road"], rels["hydro"], intersects, index_s=idx_s
            )
            results[paper_mb] = {"PBSM": pbsm, "LR95": lr95, "LR94": lr94}

        table = ResultTable(
            f"PBSM vs seeded-tree joins, Road x Hydro (scale={BENCH_SCALE})",
            ["buffer (paper MB)", "PBSM (s)", "LR95 no-index (s)",
             "LR94 one-index (s)"],
        )
        for paper_mb, per in sorted(results.items()):
            table.add(
                paper_mb,
                per["PBSM"].report.total_s,
                per["LR95"].report.total_s,
                per["LR94"].report.total_s,
            )
        table.emit("seeded_trees_vs_pbsm.txt")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    counts = {
        len(res.pairs) for per in results.values() for res in per.values()
    }
    assert len(counts) == 1  # all three agree exactly

    # The paper's position: PBSM beats building trees first when no index
    # exists.  Allow slack at the smallest buffer where both thrash.
    for paper_mb, per in results.items():
        assert (
            per["PBSM"].report.total_s < per["LR95"].report.total_s * 1.25
        ), paper_mb
